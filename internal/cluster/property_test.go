package cluster

import (
	"reflect"
	"sort"
	"testing"

	"micstream/internal/sim"
)

// runScenario executes one (placement, scenario, seed) cell on a fresh
// 2-device × 2-partition × 2-stream platform.
func runScenario(t *testing.T, place string, cfg ScenarioConfig) *Result {
	t.Helper()
	ctx := newCtx(t, 2, 2, 2)
	jobs, err := BuildScenario(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ByName(place)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, WithPlacement(p))
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// imbalanced is the scenario grid the properties quantify over: a 16×
// size spread with a third of the jobs device-resident.
func imbalanced(seed uint64) ScenarioConfig {
	return ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       4,
		AffinityFraction: 0.33,
		Origins:          []int{0, 1},
	}
}

// TestClusterBitIdenticalRepeats asserts the determinism contract for
// every placement policy: the same configuration produces
// byte-for-byte identical results on every run.
func TestClusterBitIdenticalRepeats(t *testing.T) {
	for _, place := range Policies() {
		a := runScenario(t, place, imbalanced(99))
		b := runScenario(t, place, imbalanced(99))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: repeated cluster runs differ", place)
		}
		c := runScenario(t, place, imbalanced(100))
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical schedules", place)
		}
	}
}

// TestClusterWorkConserving asserts the cluster-level invariant for
// the built-in (non-pinning) policies: while any job waits unplaced in
// the cluster queue, every stream of every device is busy.
// Reconstructed from outcomes: each job's placement-wait interval
// [arrival, placed) must be covered by the busy intervals of all
// streams.
func TestClusterWorkConserving(t *testing.T) {
	for _, place := range Policies() {
		for _, seed := range []uint64{5, 11, 23} {
			cfg := imbalanced(seed)
			cfg.Jobs = 64
			r := runScenario(t, place, cfg)
			assertClusterWorkConserving(t, place, r, 8)
		}
	}
}

func assertClusterWorkConserving(t *testing.T, label string, r *Result, streams int) {
	t.Helper()
	type iv struct{ start, end sim.Time }
	busy := make(map[int][]iv, streams)
	for _, o := range r.Jobs {
		busy[o.Stream] = append(busy[o.Stream], iv{o.Start, o.Done})
	}
	for s := range busy {
		sort.Slice(busy[s], func(i, j int) bool { return busy[s][i].start < busy[s][j].start })
	}
	covered := func(s int, from, to sim.Time) bool {
		at := from
		for _, i := range busy[s] {
			if i.start > at {
				return false
			}
			if i.end > at {
				at = i.end
			}
			if at >= to {
				return true
			}
		}
		return at >= to
	}
	violations := 0
	for _, o := range r.Jobs {
		if o.PlaceWait() <= 0 {
			continue
		}
		for s := 0; s < streams; s++ {
			if !covered(s, o.Arrival, o.Placed) {
				violations++
				if violations <= 3 {
					t.Errorf("%s: job %d waited unplaced [%v,%v) while stream %d was idle",
						label, o.ID, o.Arrival, o.Placed, s)
				}
			}
		}
	}
	if violations > 3 {
		t.Errorf("%s: %d further work-conservation violations suppressed", label, violations-3)
	}
}

// TestPredictedWithinStaticBound asserts the placement-quality bound:
// predicted placement never trails the best static single-device
// assignment (every job pinned to the single best device of the same
// platform) by more than 5% of makespan, across the imbalanced
// scenario grid. In practice it should win outright — the second
// device's streams are free capacity — but the bound is what the
// policy contract states (DESIGN.md §9).
func TestPredictedWithinStaticBound(t *testing.T) {
	const bound = 1.05
	for _, seed := range []uint64{1, 7, 13, 29} {
		cfg := imbalanced(seed)
		pred := runScenario(t, "predicted", cfg)

		bestStatic := sim.Duration(0)
		for d := 0; d < 2; d++ {
			ctx := newCtx(t, 2, 2, 2)
			jobs, err := BuildScenario(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(ctx, WithPlacement(Static(d)))
			if err != nil {
				t.Fatal(err)
			}
			r, err := c.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			if bestStatic == 0 || r.Makespan < bestStatic {
				bestStatic = r.Makespan
			}
		}
		if float64(pred.Makespan) > bound*float64(bestStatic) {
			t.Errorf("seed %d: predicted makespan %v exceeds %.0f%% of best static single-device %v",
				seed, pred.Makespan, bound*100, bestStatic)
		}
	}
}

// TestEveryClusterJobRunsExactlyOnce asserts completeness under every
// placement policy.
func TestEveryClusterJobRunsExactlyOnce(t *testing.T) {
	for _, place := range Policies() {
		cfg := imbalanced(42)
		cfg.Jobs = 60
		r := runScenario(t, place, cfg)
		seen := map[int]bool{}
		for _, o := range r.Jobs {
			if seen[o.Index] {
				t.Fatalf("%s: job index %d appears twice", place, o.Index)
			}
			seen[o.Index] = true
			if o.Done < o.Start || o.Start < o.Placed || o.Placed < o.Arrival {
				t.Fatalf("%s: job %d has inverted lifecycle %v/%v/%v/%v",
					place, o.ID, o.Arrival, o.Placed, o.Start, o.Done)
			}
		}
		if len(seen) != 60 {
			t.Fatalf("%s: %d unique jobs completed, want 60", place, len(seen))
		}
	}
}

// TestClusterQueueEmptyUnlessSaturated exercises the dispatch-loop
// invariant directly via the test hook: after every placement loop, a
// non-empty cluster queue implies every device has a full committed
// queue and no idle stream.
func TestClusterQueueEmptyUnlessSaturated(t *testing.T) {
	ctx := newCtx(t, 2, 2, 1)
	jobs, err := BuildScenario(ctx, imbalanced(17))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, WithQueueDepth(1), WithPlacement(Predicted()))
	if err != nil {
		t.Fatal(err)
	}
	checks := 0
	c.afterChange = func() {
		checks++
		if len(c.queue) == 0 {
			return
		}
		for d, s := range c.scheds {
			if s.QueueDepth() < 1 {
				t.Fatalf("cluster queue holds %d jobs while device %d has admission capacity", len(c.queue), d)
			}
			if s.InFlight() < len(s.Streams()) {
				t.Fatalf("cluster queue holds %d jobs while device %d has an idle stream", len(c.queue), d)
			}
		}
	}
	if _, err := c.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if checks == 0 {
		t.Fatal("dispatch hook never ran")
	}
}
