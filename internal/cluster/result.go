package cluster

import (
	"micstream/internal/sched"
	"micstream/internal/sim"
)

// Outcome records one completed cluster job.
type Outcome struct {
	// Index is the job's position in the Run slice.
	Index int
	// ID and Tenant echo the job's labels.
	ID     int
	Tenant string
	// Device is where the job ran; Stream is the context-wide stream
	// id within it.
	Device, Stream int
	// Arrival, Placed, Start and Done are the lifecycle instants:
	// cluster admission, device commitment, stream dispatch, and
	// completion of the last action. Placed equals Arrival unless the
	// job waited in the cluster queue for admission capacity.
	Arrival, Placed, Start, Done sim.Time
	// Est is the service estimate excluding staging.
	Est sim.Duration
	// Deadline echoes the job's relative latency budget (0: none);
	// Missed reports the completed job overran it (Latency > Deadline).
	Deadline sim.Duration
	Missed   bool
	// Staged reports whether the job ran off its origin device and
	// paid the host-staging transfer; StagedBytes is the charged
	// volume and StagingEst that transfer's modeled link occupancy.
	// After a steal these reflect the final device.
	Staged      bool
	StagedBytes int64
	StagingEst  sim.Duration
	// HitBytes and MissBytes split an off-origin job's staging demand
	// at its final commitment: bytes found resident on the device
	// (free — the residency cache held them) versus bytes actually
	// staged (the cold-miss remainder StagedBytes charges, before the
	// staging factor). They sum to the job's StagingDemand. Without
	// WithResidency every demanded byte is a miss.
	HitBytes, MissBytes int64
	// Origin echoes the device holding the job's inputs (-1:
	// host-resident), so final placement is auditable per job.
	Origin int
	// Stolen reports the job was withdrawn from a device at a drain
	// instant and re-bound; StolenFrom is the most recent victim (-1
	// when never stolen) and StolenAt the latest re-binding instant.
	// Without WithSlicing a stolen job dispatches immediately on the
	// thief, so it is stolen at most once and Device names where it
	// ran; with slicing a job may additionally migrate mid-job (see
	// Migrations). Placed stays the first commitment instant.
	Stolen     bool
	StolenFrom int
	StolenAt   sim.Time
	// Slices counts the stream grants the job took across every device
	// it ran on: 1 for a whole-job dispatch, more under WithSlicing.
	// Zero means the job never reached a stream.
	Slices int
	// Migrations is the job's mid-job migration history, in order: at
	// each entry the undispatched remainder — tasks [NextTask:] of the
	// original list — left From for To at the drain instant At
	// (DESIGN.md §13). Empty for unstolen and pre-dispatch-stolen jobs.
	Migrations []Migration
	// Failed marks a job the run admitted but could never place or
	// run because a scheduling error aborted the run; its lifecycle
	// fields past Arrival are meaningless.
	Failed bool
}

// Migration records one mid-job re-binding of a partially-run job's
// undispatched remainder (WithSlicing + WithStealing).
type Migration struct {
	// From and To are the victim and thief devices.
	From, To int
	// At is the migration instant (a drain instant).
	At sim.Time
	// NextTask indexes the first task of the migrated remainder in the
	// job's original task list.
	NextTask int
}

// Wait is the total queueing delay (dispatch minus arrival).
func (o Outcome) Wait() sim.Duration { return o.Start.Sub(o.Arrival) }

// PlaceWait is the cluster-level share of the wait: how long the job
// sat unplaced because every device was saturated.
func (o Outcome) PlaceWait() sim.Duration { return o.Placed.Sub(o.Arrival) }

// Latency is the response time (completion minus arrival).
func (o Outcome) Latency() sim.Duration { return o.Done.Sub(o.Arrival) }

// Service is the stream occupancy (completion minus dispatch),
// including any staging transfer.
func (o Outcome) Service() sim.Duration { return o.Done.Sub(o.Start) }

// schedOutcome converts to the sched accounting form so the tenant
// aggregation is shared with the single-device scheduler.
func (o Outcome) schedOutcome() sched.JobOutcome {
	return sched.JobOutcome{
		Index:    o.Index,
		ID:       o.ID,
		Tenant:   o.Tenant,
		Stream:   o.Stream,
		Arrival:  o.Arrival,
		Start:    o.Start,
		Done:     o.Done,
		Est:      o.Est,
		Deadline: o.Deadline,
		Missed:   o.Missed,
		Failed:   o.Failed,
	}
}

// DeviceStats aggregates the jobs of one device.
type DeviceStats struct {
	// Device is the device index.
	Device int
	// Jobs is the completed-job count.
	Jobs int
	// Staged counts the jobs that paid a host-staging transfer.
	Staged int
	// Busy is the summed stream occupancy of the device's jobs.
	Busy sim.Duration
	// Utilization is Busy over the run's total stream-time
	// (makespan × streams): 1 means the device never idled.
	Utilization float64
	// KernelBusy and LinkBusy are this run's partition-server and
	// DMA-server occupancy (sim.Server accounting, deltas against Run
	// entry — the servers accumulate across runs). Unlike Busy, which
	// counts whole-job stream occupancy including queueing inside the
	// device, these measure the hardware models themselves.
	KernelBusy, LinkBusy sim.Duration
	// KernelUtilization is KernelBusy over makespan × partitions;
	// LinkUtilization is LinkBusy over the makespan. 1 means the
	// resource never idled during the run.
	KernelUtilization, LinkUtilization float64
}

// Result summarizes one cluster Run.
type Result struct {
	// Placement names the placement policy that routed the jobs.
	Placement string
	// Jobs lists every outcome in submission order.
	Jobs []Outcome
	// Devices lists per-device aggregates in device order.
	Devices []DeviceStats
	// Tenants lists per-tenant aggregates sorted by tenant label
	// (the same accounting sched.Result carries).
	Tenants []sched.TenantStats
	// Makespan is the span from the run's start to the last
	// completion.
	Makespan sim.Duration
	// Flops is the summed kernel work of every job's tasks; GFlops
	// is Flops over the makespan (0 when no costs were declared).
	Flops  float64
	GFlops float64
	// StagedJobs and StagedBytes total the cross-device staging the
	// placement caused — the Fig. 11 shortfall, measured.
	StagedJobs  int
	StagedBytes int64
	// HitBytes and MissBytes total the residency cache's per-job
	// splits: demand served from resident tiles versus demand staged
	// cold (hits + misses == the off-origin jobs' total staging
	// demand). Without WithResidency, HitBytes is 0 and MissBytes is
	// the full demand. EvictedBytes is the volume LRU eviction dropped
	// at this run's drain instants (always 0 cache-less).
	HitBytes, MissBytes, EvictedBytes int64
	// DeadlineMisses counts completed jobs that overran their declared
	// relative deadline (always 0 when no job carries one).
	DeadlineMisses int
	// Steals counts drain-instant re-bindings of committed,
	// not-yet-dispatched jobs (0 unless the cluster runs WithStealing).
	// Preempts counts mid-job migrations — a dispatched job's
	// undispatched remainder re-binding at a slice boundary (0 unless
	// WithSlicing and WithStealing are both enabled).
	Steals   int
	Preempts int
	// Failed counts jobs the run admitted but never ran because a
	// scheduling error aborted it (Run also returns the error).
	Failed int
}

// Device returns the aggregate for one device, or nil.
func (r *Result) Device(d int) *DeviceStats {
	for i := range r.Devices {
		if r.Devices[i].Device == d {
			return &r.Devices[i]
		}
	}
	return nil
}

// Tenant returns the aggregate for one tenant, or nil.
func (r *Result) Tenant(name string) *sched.TenantStats {
	for i := range r.Tenants {
		if r.Tenants[i].Tenant == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// summarize assembles the Result from the recorded outcomes.
func (c *Cluster) summarize(runStart sim.Time) *Result {
	r := &Result{Placement: c.place.Name(), Jobs: c.outcomes}
	end := runStart
	devs := make([]DeviceStats, len(c.scheds))
	for d := range devs {
		devs[d].Device = d
	}
	schedOutcomes := make([]sched.JobOutcome, len(c.outcomes))
	for i, o := range c.outcomes {
		schedOutcomes[i] = o.schedOutcome()
		if o.Failed {
			r.Failed++
			continue
		}
		if o.Done > end {
			end = o.Done
		}
		if o.Missed {
			r.DeadlineMisses++
		}
		ds := &devs[o.Device]
		ds.Jobs++
		ds.Busy += o.Service()
		if o.Staged {
			ds.Staged++
			r.StagedJobs++
			r.StagedBytes += o.StagedBytes
		}
		r.HitBytes += o.HitBytes
		r.MissBytes += o.MissBytes
	}
	if c.resident != nil {
		r.EvictedBytes = c.resident.Stats().EvictedBytes - c.resStart.EvictedBytes
	}
	r.Steals = c.steals
	r.Preempts = c.preempts
	r.Makespan = end.Sub(runStart)
	r.Tenants = sched.AggregateTenants(schedOutcomes, r.Makespan)
	parts := c.ctx.Config().Partitions
	for d := range devs {
		devs[d].KernelBusy = c.kernelBusy(d) - c.kernBusy0[d]
		devs[d].LinkBusy = c.ctx.Link(d).TotalBusy() - c.linkBusy0[d]
		streams := c.scheds[d].NumStreams()
		if r.Makespan > 0 && streams > 0 {
			devs[d].Utilization = devs[d].Busy.Seconds() / (r.Makespan.Seconds() * float64(streams))
		}
		if r.Makespan > 0 {
			devs[d].LinkUtilization = devs[d].LinkBusy.Seconds() / r.Makespan.Seconds()
			if parts > 0 {
				devs[d].KernelUtilization = devs[d].KernelBusy.Seconds() / (r.Makespan.Seconds() * float64(parts))
			}
		}
	}
	r.Devices = devs
	r.Flops = c.runFlops
	if r.Makespan > 0 && r.Flops > 0 {
		r.GFlops = r.Flops / r.Makespan.Seconds() / 1e9
	}
	return r
}
