package cluster

import (
	"fmt"
	"math"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/residency"
	"micstream/internal/sched"
	"micstream/internal/sim"
	"micstream/internal/workload"
)

// ScenarioConfig parameterizes a synthetic cluster workload: Jobs
// tiled-offload jobs with geometrically spread sizes, a fraction
// carrying device affinity (their inputs resident on a device, so
// off-origin placement stages them through the host), arriving under a
// deterministic arrival process over a fixed window.
type ScenarioConfig struct {
	// Jobs is the job count (default 48).
	Jobs int
	// Seed drives every random draw (default 1).
	Seed uint64
	// Arrival is the arrival process: any name workload.Arrivals
	// accepts (default "poisson").
	Arrival string
	// WindowNs is the arrival window (default 40 ms).
	WindowNs int64
	// Tenants is how many tenant labels jobs cycle through
	// (default 4).
	Tenants int
	// TilesPerJob is how many H2D+kernel+D2H tasks one job carries
	// (default 2).
	TilesPerJob int
	// KernelFlops is one job's geometric-mean kernel work
	// (default 2e8).
	KernelFlops float64
	// XferBytes is one job's total per-direction transfer volume
	// (default 1 MiB).
	XferBytes int64
	// SizeSpread makes job sizes heterogeneous: each job's kernel
	// work is KernelFlops scaled by SizeSpread^u for u uniform in
	// [-1, 1]. 0 defaults to 4 (a 16× light-to-heavy range — the mix
	// that separates time-aware from count-based placement); 1 makes
	// every job identical.
	SizeSpread float64
	// AffinityFraction is the probability a job's inputs are
	// device-resident (Origin set, StagingBytes = XferBytes); 0 means
	// every job is host-resident. Negative disables explicitly.
	AffinityFraction float64
	// Origins lists the devices affinity jobs cycle through (default
	// {0}: all device-resident data starts on device 0, the Fig. 11
	// shape where the first MIC holds the factorization's panels).
	Origins []int
	// Datasets makes the device-resident jobs share inputs: affine
	// jobs cycle through this many named datasets, each declaring its
	// read regions so a residency-enabled cluster can serve repeats
	// from cache. Jobs of one dataset share one origin (cycled from
	// Origins by dataset). 0 keeps every job's input private — no
	// regions are declared and the cache has nothing to reuse.
	Datasets int
	// WriteFraction is the probability a dataset-reading job also
	// overwrites its region, invalidating cached copies elsewhere at
	// its completion. 0 (or negative) means read-only; only consulted
	// when Datasets > 0.
	WriteFraction float64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Jobs == 0 {
		c.Jobs = 48
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.WindowNs == 0 {
		c.WindowNs = 40_000_000
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.TilesPerJob == 0 {
		c.TilesPerJob = 2
	}
	if c.KernelFlops == 0 {
		c.KernelFlops = 2e8
	}
	if c.XferBytes == 0 {
		c.XferBytes = 1 << 20
	}
	if c.SizeSpread == 0 {
		c.SizeSpread = 4
	}
	if len(c.Origins) == 0 {
		c.Origins = []int{0}
	}
	return c
}

// BuildScenario allocates the scenario's shared virtual buffers on ctx
// and returns the job list in arrival-offset order, ready for
// Cluster.Run. Everything is a pure function of the configuration.
func BuildScenario(ctx *hstreams.Context, cfg ScenarioConfig) ([]Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Jobs < 0 || cfg.WindowNs <= 0 || cfg.Tenants < 1 || cfg.TilesPerJob < 1 ||
		cfg.SizeSpread < 1 || cfg.KernelFlops < 0 || cfg.XferBytes < 0 ||
		cfg.AffinityFraction > 1 || cfg.Datasets < 0 || cfg.WriteFraction > 1 {
		return nil, fmt.Errorf("cluster: invalid scenario config %+v", cfg)
	}
	for _, d := range cfg.Origins {
		if d < 0 || d >= ctx.NumDevices() {
			return nil, fmt.Errorf("cluster: scenario origin device %d out of range [0,%d)", d, ctx.NumDevices())
		}
	}

	tileBytes := int(cfg.XferBytes) / cfg.TilesPerJob
	if tileBytes < 1 {
		tileBytes = 1
	}
	var in, out *hstreams.Buffer
	if ctx.Config().ExecuteKernels {
		in = hstreams.Alloc1D(ctx, "cluster-scenario/in", make([]byte, tileBytes))
		out = hstreams.Alloc1D(ctx, "cluster-scenario/out", make([]byte, tileBytes))
	} else {
		in = hstreams.AllocVirtual(ctx, "cluster-scenario/in", tileBytes, 1)
		out = hstreams.AllocVirtual(ctx, "cluster-scenario/out", tileBytes, 1)
	}
	tileFlops := cfg.KernelFlops / float64(cfg.TilesPerJob)

	arrivals, err := workload.Arrivals(cfg.Arrival, cfg.Seed, cfg.Jobs,
		float64(cfg.WindowNs)/float64(max(cfg.Jobs, 1)))
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(cfg.Seed ^ 0x636c7573746572) // "cluster"
	tenants := sched.TenantNames(cfg.Tenants)

	jobs := make([]Job, cfg.Jobs)
	affine := 0
	for j := range jobs {
		factor := math.Pow(cfg.SizeSpread, 2*rng.Float64()-1)
		tasks := make([]*core.Task, cfg.TilesPerJob)
		for k := range tasks {
			tasks[k] = &core.Task{
				ID:  k,
				H2D: []core.TransferSpec{core.Xfer(in, 0, tileBytes)},
				Cost: device.KernelCost{
					Name:  fmt.Sprintf("job%d", j),
					Flops: tileFlops * factor,
					Bytes: float64(tileBytes) * 2,
				},
				D2H:        []core.TransferSpec{core.Xfer(out, 0, tileBytes)},
				StreamHint: -1,
			}
		}
		job := Job{
			ID:      j,
			Tenant:  tenants[j%cfg.Tenants],
			Arrival: sim.Time(arrivals[j]),
			Tasks:   tasks,
			Origin:  -1,
		}
		if rng.Float64() < cfg.AffinityFraction {
			if cfg.Datasets > 0 {
				// Dataset-keyed jobs: input is one of Datasets shared
				// allocations, its origin fixed per dataset so every
				// reader agrees where the data lives, its region
				// declared tile by tile for the residency cache.
				ds := affine % cfg.Datasets
				job.Origin = cfg.Origins[ds%len(cfg.Origins)]
				job.Reads = []residency.Region{{
					Dataset:   fmt.Sprintf("ds%d", ds),
					First:     0,
					Tiles:     cfg.TilesPerJob,
					TileBytes: int64(tileBytes),
				}}
				job.StagingBytes = residency.TotalBytes(job.Reads)
				// Guard the draw so read-only configs consume the same
				// random stream as before Datasets existed.
				if cfg.WriteFraction > 0 && rng.Float64() < cfg.WriteFraction {
					job.Writes = job.Reads
				}
			} else {
				job.Origin = cfg.Origins[affine%len(cfg.Origins)]
				job.StagingBytes = cfg.XferBytes
			}
			affine++
		}
		jobs[j] = job
	}
	return jobs, nil
}
