package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"micstream/internal/cluster"
	"micstream/internal/obs"
	"micstream/internal/sim"
	"micstream/internal/slo"
	"micstream/internal/telemetry"
)

// testSpec declares one loose latency objective per ingest tenant plus
// a throughput floor — permissive enough that a healthy run stays
// compliant.
func testSpec(t *testing.T) slo.Spec {
	t.Helper()
	return slo.Spec{Objectives: []slo.Objective{
		{Tenant: "A", Name: "a-lat", Kind: slo.KindLatency, Target: 0.9, Threshold: sim.Second},
		{Tenant: "B", Name: "b-lat", Kind: slo.KindLatency, Target: 0.9, Threshold: sim.Second},
		{Tenant: "A", Name: "a-tp", Kind: slo.KindThroughput, Target: 0.5, Floor: 0.001},
	}}
}

// newSLOServer builds a fully instrumented server (exporter + flight +
// evaluator) over a fresh deterministic cluster.
func newSLOServer(t *testing.T, spec slo.Spec) (*Server, *httptest.Server) {
	t.Helper()
	rec := telemetry.NewRecorder()
	c := newCluster(t, cluster.WithTelemetry(rec), cluster.WithPlacement(cluster.Predicted()))
	ev, err := slo.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c,
		WithExporter(obs.NewExporter()),
		WithFlight(obs.NewFlightRecorder(64)),
		WithSLO(ev),
		WithSLOMeta(slo.Meta{Run: "test", Seed: 1, Policy: "predicted"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// submitSequential feeds n jobs one at a time: each Submit blocks
// until its epoch admits it, so the recorded batch sequence — and with
// it every virtual-time artifact — is identical across runs.
func submitSequential(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Submit(ingestJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, srv *httptest.Server, method, path string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// The endpoint table: every route's status, content type and body
// shape, plus the 404/405 edges the Go 1.22 method patterns give us.
func TestHandlerEndpointTable(t *testing.T) {
	s, srv := newSLOServer(t, testSpec(t))
	submitSequential(t, s, 12)

	cases := []struct {
		name, method, path string
		code               int
		wantType, wantBody string
	}{
		{"metrics", "GET", "/metrics", 200, "application/openmetrics-text; version=1.0.0; charset=utf-8", "micstream_jobs_done_total 12"},
		{"metrics-slo-families", "GET", "/metrics", 200, "application/openmetrics-text", "mic_slo_budget_remaining{tenant=\"A\",objective=\"a-lat\"}"},
		{"flight", "GET", "/flight", 200, "text/plain; charset=utf-8", "flight recorder: no triggers fired"},
		{"slo", "GET", "/slo", 200, "application/json", "\"schema\": \"micstream-slo-v1\""},
		{"stats", "GET", "/stats", 200, "text/plain; charset=utf-8", "submitted 12"},
		{"health", "GET", "/health", 200, "text/plain; charset=utf-8", "status ready"},
		{"metrics-post", "POST", "/metrics", 405, "", ""},
		{"slo-delete", "DELETE", "/slo", 405, "", ""},
		{"health-post", "POST", "/health", 405, "", ""},
		{"unknown", "GET", "/nope", 404, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, ctype, body := get(t, srv, tc.method, tc.path)
			if code != tc.code {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, code, tc.code)
			}
			if tc.wantType != "" && !strings.HasPrefix(ctype, tc.wantType) {
				t.Fatalf("content type %q, want prefix %q", ctype, tc.wantType)
			}
			if tc.wantBody != "" && !strings.Contains(body, tc.wantBody) {
				t.Fatalf("body missing %q:\n%s", tc.wantBody, body)
			}
		})
	}
	// The exposition stays well-formed with the aux families injected:
	// exactly one # EOF, at the very end.
	_, _, m := get(t, srv, "GET", "/metrics")
	if !strings.HasSuffix(m, "# EOF\n") || strings.Count(m, "# EOF") != 1 {
		t.Fatalf("exposition not EOF-terminated exactly once:\n%s", m)
	}
}

// Two identically configured servers fed the same sequential batch
// sequence serve byte-identical /metrics, /slo and /flight bodies —
// the replayed-sequence determinism the wall clock must not leak into.
func TestReplayedBodiesDeterministic(t *testing.T) {
	bodies := func() map[string]string {
		s, srv := newSLOServer(t, testSpec(t))
		submitSequential(t, s, 12)
		out := make(map[string]string, 3)
		for _, p := range []string{"/metrics", "/slo", "/flight"} {
			code, _, body := get(t, srv, "GET", p)
			if code != 200 {
				t.Fatalf("GET %s = %d", p, code)
			}
			out[p] = body
		}
		return out
	}
	a, b := bodies(), bodies()
	for _, p := range []string{"/metrics", "/slo", "/flight"} {
		if a[p] != b[p] {
			t.Fatalf("%s differs across identical runs:\n%s\n---\n%s", p, a[p], b[p])
		}
	}
}

// An impossible objective exhausts its budget: /health flips to 503
// with the exhaustion reason, and the flight recorder captures a dump
// labeled with the objective.
func TestBudgetExhaustionTripsHealthAndFlight(t *testing.T) {
	spec := slo.Spec{Objectives: []slo.Objective{{
		Tenant: "A", Name: "impossible", Kind: slo.KindLatency,
		Target: 0.99, Threshold: sim.Nanosecond,
	}}}
	s, srv := newSLOServer(t, spec)
	submitSequential(t, s, 12)

	code, _, body := get(t, srv, "GET", "/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health = %d, want 503; body:\n%s", code, body)
	}
	if !strings.Contains(body, "status unhealthy") || !strings.Contains(body, "slo-budget-exhausted: impossible") {
		t.Fatalf("/health body:\n%s", body)
	}
	if _, _, fl := get(t, srv, "GET", "/flight"); !strings.Contains(fl, `slo "impossible" (tenant "A") error budget exhausted`) {
		t.Fatalf("/flight missing exhaustion dump:\n%s", fl)
	}
	if _, _, sl := get(t, srv, "GET", "/slo"); !strings.Contains(sl, "\"compliant\": false") {
		t.Fatalf("/slo still compliant:\n%s", sl)
	}
}

// The SLO evaluator is an observer: a run with the full SLO stack
// attached replays to the bit-identical outcome stream of a bare
// cluster (observers-never-perturb, service edition).
func TestSLOInstrumentationNeverPerturbs(t *testing.T) {
	s, _ := newSLOServer(t, testSpec(t))
	sub := s.Subscribe()
	submitSequential(t, s, 12)
	live := drainAll(sub)

	var replayed []cluster.Outcome
	if _, err := Replay(newCluster(t, cluster.WithPlacement(cluster.Predicted())), s.Batches(), func(o cluster.Outcome) {
		replayed = append(replayed, o)
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("SLO-instrumented stream diverges from bare replay:\nlive:   %+v\nreplay: %+v", live, replayed)
	}
}

// Eight submitters hammer the frontier while /metrics is polled: every
// exposition read mid-flight must be complete and well-formed (one
// trailing # EOF, only comment or sample lines) — the race-enabled
// guarantee that the aux SLO families never tear the exposition.
func TestOpenMetricsStableUnderConcurrentIngest(t *testing.T) {
	s, srv := newSLOServer(t, testSpec(t))
	const goroutines, perG = 8, 15
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := s.Submit(ingestJob(g*perG + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, _, body := get(t, srv, "GET", "/metrics")
			if code != 200 {
				t.Errorf("/metrics = %d", code)
				return
			}
			if err := checkExposition(body); err != "" {
				t.Errorf("torn exposition (%s):\n%s", err, body)
				return
			}
			// /slo and /health must also stay readable mid-flight.
			if code, _, _ := get(t, srv, "GET", "/slo"); code != 200 {
				t.Errorf("/slo = %d", code)
				return
			}
			if code, _, _ := get(t, srv, "GET", "/health"); code != 200 && code != 503 {
				t.Errorf("/health = %d", code)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-probeDone
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, _, body := get(t, srv, "GET", "/metrics")
	if !strings.Contains(body, "mic_slo_burn_rate") {
		t.Fatalf("final exposition missing SLO families:\n%s", body)
	}
}

// checkExposition validates the OpenMetrics text shape: ends with one
// # EOF, and every line is a comment or a `name{labels} value` sample
// from this system's families.
func checkExposition(body string) string {
	if !strings.HasSuffix(body, "# EOF\n") {
		return "missing trailing # EOF"
	}
	if strings.Count(body, "# EOF") != 1 {
		return "multiple # EOF markers"
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if line == "" {
			return "blank line"
		}
		if strings.HasPrefix(line, "# TYPE ") || strings.HasPrefix(line, "# HELP ") || line == "# EOF" {
			continue
		}
		if !strings.HasPrefix(line, "micstream_") && !strings.HasPrefix(line, "mic_slo_") {
			return "unexpected line " + line
		}
		if !strings.Contains(line, " ") {
			return "sample without value: " + line
		}
	}
	return ""
}
