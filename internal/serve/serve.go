// Package serve turns the batch cluster into a long-running service:
// a Server owns a persistent cluster.Session and ingests jobs
// concurrently from many goroutines through a channel-based admission
// frontier, batching whatever has arrived by each epoch boundary into
// the next admitted batch.
//
// This is the one layer of the system where wall-clock time exists,
// and it crosses exactly one boundary: *which batch a job lands in*.
// Submitters race in real time for a slot in the next batch; from the
// admission instant on, everything is the deterministic virtual-time
// cascade of DESIGN.md §6 — the session admits each batch at the
// epoch boundary's virtual instant and runs the engine to quiescence,
// so a recorded batch sequence (Batches) replayed single-threaded
// through Replay reproduces the server's outcome stream bit for bit
// (DESIGN.md §15). That invariant is what makes a concurrent-ingest
// server debuggable: any live incident is a saved []Batch away from a
// deterministic reproduction.
//
// The frontier also keeps the no-loss/no-duplication contract under
// racing drains: Submit holds an in-flight guard while it hands its
// job to the run loop, Drain refuses new entries and waits for the
// in-flight count to reach zero before signalling the loop, and the
// loop then empties the frontier into final epochs before exiting —
// every job either receives a cluster index and a terminal Outcome,
// or its Submit returns ErrStopped having admitted nothing.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"micstream/internal/cluster"
	"micstream/internal/obs"
	"micstream/internal/sim"
	"micstream/internal/slo"
	"micstream/internal/telemetry"
)

// ErrStopped is returned by Submit once a drain has begun: the job
// was not admitted and never will be.
var ErrStopped = errors.New("serve: server is draining")

// Batch is one epoch boundary's admitted jobs, in admission order —
// the unit of the recorded ingest sequence Replay consumes.
type Batch struct {
	// Jobs holds the admitted job specs exactly as the session saw
	// them (arrivals zeroed: a service-mode job arrives at its epoch
	// boundary, not at a caller-chosen virtual instant).
	Jobs []cluster.Job
}

// Stats is a point-in-time snapshot of the server's ingest counters.
type Stats struct {
	// Submitted and Completed count jobs admitted and jobs terminal
	// (completed or failed).
	Submitted, Completed int
	// Epochs counts admitted batches (each ran one engine epoch).
	Epochs int
	// Elapsed is wall-clock time since the server started.
	Elapsed time.Duration
	// JobsPerSec is the sustained ingest rate: Completed over Elapsed.
	JobsPerSec float64
}

// Option configures a Server.
type Option func(*Server)

// WithQueueCap sets the admission frontier's channel capacity
// (default 256): how many jobs may sit between the submitters and the
// run loop before Submit blocks.
func WithQueueCap(n int) Option {
	return func(s *Server) { s.queueCap = n }
}

// WithBatchCap caps how many jobs one epoch admits (default
// unbounded): a full frontier splits into successive epochs instead
// of one giant batch.
func WithBatchCap(n int) Option {
	return func(s *Server) { s.batchCap = n }
}

// WithExporter attaches the OpenMetrics exporter so every
// drain-instant snapshot is exposed live on the server's /metrics
// endpoint. Requires a cluster built WithTelemetry.
func WithExporter(x *obs.Exporter) Option {
	return func(s *Server) { s.exporter = x }
}

// WithFlight attaches the flight recorder so anomaly dumps (job
// failures, tenant p95 breaches) accumulate live and are exposed on
// /flight. Requires a cluster built WithTelemetry. The recorder is
// not itself thread-safe; the server serializes scheduler-side writes
// against HTTP-side reads.
func WithFlight(f *obs.FlightRecorder) Option {
	return func(s *Server) { s.flight = f }
}

// WithSLO attaches an SLO evaluator: every event and drain-instant
// snapshot feeds it live, its verdict is exposed on /slo, its
// mic_slo_* families join the /metrics exposition (when WithExporter),
// its alert and budget state feeds /health, and — when WithFlight —
// a budget exhaustion triggers a flight-recorder dump. Requires a
// cluster built WithTelemetry. The evaluator is not itself
// thread-safe; the server serializes scheduler-side writes against
// HTTP-side reads.
func WithSLO(ev *slo.Evaluator) Option {
	return func(s *Server) { s.slo = ev }
}

// WithSLOMeta sets the provenance block /slo reports (run label, seed,
// placement policy). Without it the report carries zero values.
func WithSLOMeta(m slo.Meta) Option {
	return func(s *Server) { s.sloMeta = m }
}

// submitReq is one job crossing the frontier, with the reply channel
// its submitter blocks on.
type submitReq struct {
	job   cluster.Job
	reply chan submitRes
}

type submitRes struct {
	idx int
	err error
}

// Server is the long-running service: one goroutine (the run loop)
// owns the cluster session and the virtual clock; any number of
// goroutines submit through the frontier and consume subscriptions.
type Server struct {
	c        *cluster.Cluster
	sess     *cluster.Session
	queueCap int
	batchCap int
	exporter *obs.Exporter
	flight   *obs.FlightRecorder
	slo      *slo.Evaluator
	sloMeta  slo.Meta

	frontier chan submitReq
	stop     chan struct{} // closed by Drain once no submitter is in flight
	stopOnce sync.Once
	loopDone chan struct{} // closed when the run loop has exited

	// gate serializes Submit entries against the drain decision: a
	// drain only signals the run loop after every in-flight Submit has
	// finished handing its job to the frontier, so the final backlog
	// sweep cannot race a send.
	gate       sync.Mutex
	inflight   int
	stopping   bool
	idle       chan struct{} // closed when stopping && inflight == 0
	idleClosed bool

	// flightMu serializes the run loop's flight-recorder writes
	// against HTTP reads (obs.FlightRecorder is not thread-safe).
	flightMu sync.Mutex

	// sloMu serializes the run loop's SLO-evaluator writes against
	// HTTP reads (/slo, /health, the /metrics aux fragment), and
	// guards the latest drain-instant snapshot /health judges device
	// saturation from. Writers take sloMu before flightMu (the
	// exhaustion hook fires inside an OnMetrics); readers take each
	// alone.
	sloMu    sync.Mutex
	lastSnap telemetry.MetricsSnapshot
	snapSeen bool

	// subMu guards the subscriber set and the recorded batches; both
	// are written by the run loop and read from caller goroutines.
	subMu      sync.Mutex
	subs       []*Subscription
	subsClosed bool
	batches    []Batch

	// statMu guards the ingest counters behind Stats.
	statMu    sync.Mutex
	submitted int
	completed int
	start     time.Time

	runErr error // session error; written by the run loop, read after loopDone
}

// New opens a session on the cluster and starts the run loop. The
// cluster is borrowed exclusively until Drain returns — calling Run
// on it, or touching its schedulers, corrupts the service.
func New(c *cluster.Cluster, opts ...Option) (*Server, error) {
	if c == nil {
		return nil, fmt.Errorf("serve: nil cluster")
	}
	s := &Server{
		c:        c,
		queueCap: 256,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		idle:     make(chan struct{}),
		start:    time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.queueCap < 1 {
		return nil, fmt.Errorf("serve: queue capacity %d must be positive", s.queueCap)
	}
	if s.batchCap < 0 {
		return nil, fmt.Errorf("serve: negative batch cap %d", s.batchCap)
	}
	if (s.exporter != nil || s.flight != nil || s.slo != nil) && !c.Telemetry().Enabled() {
		return nil, fmt.Errorf("serve: metrics/flight/slo require a cluster built WithTelemetry")
	}
	if s.exporter != nil || s.flight != nil || s.slo != nil {
		x, f, ev, rec := s.exporter, s.flight, s.slo, c.Telemetry()
		if ev != nil && f != nil {
			// A spent budget dumps the ring: the hook fires inside an
			// sloMu-held OnMetrics, so the sloMu → flightMu order here
			// is the writers' fixed order.
			ev.SetOnExhausted(func(o slo.Objective, now sim.Time) {
				s.flightMu.Lock()
				f.Trigger(fmt.Sprintf("slo %q (tenant %q) error budget exhausted", o.Name, o.TenantLabel()), now)
				s.flightMu.Unlock()
			})
		}
		if ev != nil && x != nil {
			x.SetAux(func(w io.Writer) error {
				s.sloMu.Lock()
				defer s.sloMu.Unlock()
				return ev.WriteOpenMetrics(w)
			})
		}
		if f != nil || ev != nil {
			rec.SetOnEvent(func(e telemetry.Event) {
				if ev != nil {
					s.sloMu.Lock()
					ev.OnEvent(e)
					s.sloMu.Unlock()
				}
				if f != nil {
					s.flightMu.Lock()
					f.OnEvent(e)
					s.flightMu.Unlock()
				}
			})
		}
		rec.SetOnMetrics(func(m telemetry.MetricsSnapshot) {
			if x != nil {
				x.Observe(m)
			}
			s.sloMu.Lock()
			if ev != nil {
				ev.OnMetrics(m)
			}
			s.lastSnap = m
			s.snapSeen = true
			s.sloMu.Unlock()
			if f != nil {
				s.flightMu.Lock()
				f.OnMetrics(m)
				s.flightMu.Unlock()
			}
		})
	}
	s.frontier = make(chan submitReq, s.queueCap)
	sess, err := c.NewSession(s.fanout)
	if err != nil {
		return nil, err
	}
	s.sess = sess
	go s.loop()
	return s, nil
}

// Submit hands one job to the admission frontier and blocks until the
// run loop admits it into an epoch, returning the job's cluster index
// (the key its Outcome carries in the subscription stream). The job's
// Arrival is ignored: service-mode jobs arrive at the epoch boundary
// that admits them. Safe for any number of concurrent callers; after
// a drain has begun it returns ErrStopped without admitting.
func (s *Server) Submit(job cluster.Job) (int, error) {
	if !s.enter() {
		return 0, ErrStopped
	}
	reply := make(chan submitRes, 1)
	s.frontier <- submitReq{job: job, reply: reply}
	s.exit()
	res := <-reply
	return res.idx, res.err
}

func (s *Server) enter() bool {
	s.gate.Lock()
	defer s.gate.Unlock()
	if s.stopping {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) exit() {
	s.gate.Lock()
	s.inflight--
	if s.stopping && s.inflight == 0 && !s.idleClosed {
		s.idleClosed = true
		close(s.idle)
	}
	s.gate.Unlock()
}

// loop is the run loop: gather a batch from the frontier, admit it at
// the current epoch boundary, run the epoch to quiescence (outcomes
// fan out from inside the cascade), repeat. On stop it sweeps the
// remaining backlog into final epochs and closes the subscriptions.
func (s *Server) loop() {
	defer close(s.loopDone)
	defer s.closeSubs()
	for {
		var batch []submitReq
		select {
		case req := <-s.frontier:
			batch = append(batch, req)
		case <-s.stop:
			// No submitter is mid-send anymore (Drain waited out the
			// in-flight count), so the frontier holds a finite
			// backlog: sweep it into final epochs and exit.
			for {
				select {
				case req := <-s.frontier:
					batch = append(batch, req)
					if s.batchCap > 0 && len(batch) >= s.batchCap {
						s.runBatch(batch)
						batch = nil
					}
				default:
					if len(batch) > 0 {
						s.runBatch(batch)
					}
					return
				}
			}
		}
		// Opportunistic gather: whatever else already crossed the
		// frontier joins this epoch, up to the batch cap.
	gather:
		for s.batchCap == 0 || len(batch) < s.batchCap {
			select {
			case req := <-s.frontier:
				batch = append(batch, req)
			default:
				break gather
			}
		}
		s.runBatch(batch)
	}
}

// runBatch admits one gathered batch at the current epoch boundary,
// replies to every submitter with its cluster index, records the
// admitted jobs for replay, and runs the epoch.
func (s *Server) runBatch(reqs []submitReq) {
	jobs := make([]cluster.Job, len(reqs))
	for i, r := range reqs {
		jobs[i] = r.job
		jobs[i].Arrival = 0 // arrivals are the boundary's virtual instant
	}
	admitted := 0
	if base, err := s.sess.Submit(jobs); err == nil {
		s.record(Batch{Jobs: jobs})
		admitted = len(jobs)
		for i, r := range reqs {
			r.reply <- submitRes{idx: base + i}
		}
	} else {
		// The batch failed as a unit (one malformed job rejects a
		// whole Submit). Fall back to per-job admission — batches
		// stack at one boundary — so innocent jobs still land and the
		// bad ones carry their own error back to their submitters.
		kept := make([]cluster.Job, 0, len(jobs))
		for i, r := range reqs {
			base, jerr := s.sess.Submit(jobs[i : i+1])
			if jerr != nil {
				r.reply <- submitRes{err: jerr}
				continue
			}
			kept = append(kept, jobs[i])
			r.reply <- submitRes{idx: base}
		}
		if len(kept) == 0 {
			return
		}
		s.record(Batch{Jobs: kept})
		admitted = len(kept)
	}
	s.statMu.Lock()
	s.submitted += admitted
	s.statMu.Unlock()
	if _, err := s.sess.RunEpoch(); err != nil && s.runErr == nil {
		s.runErr = err
	}
}

// fanout is the session's outcome sink: it runs on the run-loop
// goroutine, inside the engine's event cascade, and must never block
// — subscriptions buffer without bound and readers catch up on their
// own time.
func (s *Server) fanout(o cluster.Outcome) {
	s.statMu.Lock()
	s.completed++
	s.statMu.Unlock()
	s.subMu.Lock()
	for _, sub := range s.subs {
		sub.push(o)
	}
	s.subMu.Unlock()
}

func (s *Server) record(b Batch) {
	s.subMu.Lock()
	s.batches = append(s.batches, b)
	s.subMu.Unlock()
}

// Subscribe registers an outcome stream: every job outcome terminal
// after this call is delivered, in virtual completion order. The
// subscription buffers without bound (a slow reader delays nobody);
// Next reports exhaustion after the server drains.
func (s *Server) Subscribe() *Subscription {
	sub := &Subscription{notify: make(chan struct{}, 1)}
	s.subMu.Lock()
	if s.subsClosed {
		sub.closed = true
	} else {
		s.subs = append(s.subs, sub)
	}
	s.subMu.Unlock()
	return sub
}

func (s *Server) closeSubs() {
	s.subMu.Lock()
	s.subsClosed = true
	subs := s.subs
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.close()
	}
}

// Batches returns the recorded admission sequence so far: one Batch
// per epoch, in epoch order. Feeding it to Replay on an identically
// configured cluster reproduces the outcome stream bit for bit.
func (s *Server) Batches() []Batch {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	out := make([]Batch, len(s.batches))
	copy(out, s.batches)
	return out
}

// Stats snapshots the ingest counters.
func (s *Server) Stats() Stats {
	s.statMu.Lock()
	submitted, completed := s.submitted, s.completed
	start := s.start
	s.statMu.Unlock()
	s.subMu.Lock()
	epochs := len(s.batches)
	s.subMu.Unlock()
	st := Stats{
		Submitted: submitted,
		Completed: completed,
		Epochs:    epochs,
		Elapsed:   time.Since(start),
	}
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.JobsPerSec = float64(completed) / secs
	}
	return st
}

// Drain stops admission and waits for the server to go quiet: no new
// Submit may enter, every in-flight Submit finishes handing over its
// job, the run loop sweeps the frontier backlog into final epochs,
// streams the last outcomes, closes the subscriptions and exits. The
// deadline bounds each wait; on timeout the server keeps draining in
// the background and a later Drain call can re-await it. Idempotent;
// returns the session's first scheduling error, if any.
func (s *Server) Drain(timeout time.Duration) error {
	s.gate.Lock()
	if !s.stopping {
		s.stopping = true
		if s.inflight == 0 && !s.idleClosed {
			s.idleClosed = true
			close(s.idle)
		}
	}
	s.gate.Unlock()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case <-s.idle:
	case <-deadline.C:
		return fmt.Errorf("serve: drain deadline exceeded waiting for in-flight submitters")
	}
	s.stopOnce.Do(func() { close(s.stop) })
	select {
	case <-s.loopDone:
	case <-deadline.C:
		return fmt.Errorf("serve: drain deadline exceeded waiting for the backlog to finish")
	}
	return s.runErr
}

// Result summarizes everything the server ran — the same aggregate
// accounting a batch Run returns, over all epochs. Only valid after
// Drain has completed (the run loop owns the session until then).
func (s *Server) Result() (*cluster.Result, error) {
	select {
	case <-s.loopDone:
	default:
		return nil, fmt.Errorf("serve: result requires a completed drain")
	}
	return s.sess.Result(), s.runErr
}

// Err reports the session's first scheduling error, if any. Only
// meaningful after Drain.
func (s *Server) Err() error {
	select {
	case <-s.loopDone:
		return s.runErr
	default:
		return nil
	}
}

// Handler serves the live observability surface: /metrics (OpenMetrics
// exposition, when WithExporter), /flight (flight-recorder dumps, when
// WithFlight), /slo (the SLO verdict as JSON, when WithSLO), /stats
// (ingest counters, plain text) and /health (readiness, always). All
// endpoints are GET-only; the Go 1.22 method patterns answer other
// verbs with 405.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.exporter != nil {
		mux.Handle("GET /metrics", s.exporter)
	}
	if s.flight != nil {
		mux.HandleFunc("GET /flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.flightMu.Lock()
			defer s.flightMu.Unlock()
			if err := s.flight.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if s.slo != nil {
		mux.HandleFunc("GET /slo", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			s.sloMu.Lock()
			defer s.sloMu.Unlock()
			if err := s.slo.WriteJSON(w, s.sloMeta); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "submitted %d\ncompleted %d\nepochs %d\nelapsed_seconds %.3f\njobs_per_sec %.1f\n",
			st.Submitted, st.Completed, st.Epochs, st.Elapsed.Seconds(), st.JobsPerSec)
	})
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, _ *http.Request) {
		status, reasons := s.health()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if status == "unhealthy" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "status %s\n", status)
		for _, r := range reasons {
			fmt.Fprintf(w, "reason %s\n", r)
		}
	})
	return mux
}

// health rolls the server's signals into one verdict: unhealthy (503)
// on a scheduling error or an exhausted error budget, degraded on a
// live burn-rate alert, a near-full admission frontier, or full device
// saturation at the last drain instant, else ready. The reasons list
// every contributing signal, worst first.
func (s *Server) health() (status string, reasons []string) {
	if err := s.Err(); err != nil {
		reasons = append(reasons, "run-error: "+strings.ReplaceAll(err.Error(), "\n", " "))
	}
	var degraded []string
	s.sloMu.Lock()
	if s.slo != nil {
		for _, name := range s.slo.Exhausted() {
			reasons = append(reasons, "slo-budget-exhausted: "+name)
		}
		for _, name := range s.slo.Alerting() {
			degraded = append(degraded, "slo-alert: "+name)
		}
	}
	snap, seen := s.lastSnap, s.snapSeen
	s.sloMu.Unlock()
	if len(reasons) > 0 {
		return "unhealthy", append(reasons, degraded...)
	}
	if occ := len(s.frontier); occ*10 >= s.queueCap*9 {
		degraded = append(degraded, fmt.Sprintf("ingest-backpressure: frontier %d/%d", occ, s.queueCap))
	}
	if seen && len(snap.Devices) > 0 {
		saturated := 0
		for i := range snap.Devices {
			if snap.Devices[i].Utilization > 0.95 {
				saturated++
			}
		}
		if saturated == len(snap.Devices) {
			degraded = append(degraded, fmt.Sprintf("device-saturation: all %d devices above 95%% utilization", saturated))
		}
	}
	if len(degraded) > 0 {
		return "degraded", degraded
	}
	return "ready", nil
}

// ListenAndServe serves Handler on addr; it blocks like
// http.ListenAndServe.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

// Replay runs a recorded admission sequence single-threaded on a
// fresh, identically configured cluster: one Submit+RunEpoch per
// batch, outcomes streaming to onOutcome (optional) exactly as the
// live server emitted them. This is the determinism contract of
// DESIGN.md §15 — wall clock picks the batches, virtual time does
// everything else, so the replayed outcome stream is bit-identical to
// the server's.
func Replay(c *cluster.Cluster, batches []Batch, onOutcome func(cluster.Outcome)) (*cluster.Result, error) {
	sess, err := c.NewSession(onOutcome)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	for i, b := range batches {
		if _, err := sess.Submit(b.Jobs); err != nil {
			return sess.Result(), fmt.Errorf("serve: replay batch %d: %w", i, err)
		}
		if _, err := sess.RunEpoch(); err != nil {
			return sess.Result(), fmt.Errorf("serve: replay epoch %d: %w", i, err)
		}
	}
	return sess.Result(), nil
}

// Subscription is one subscriber's outcome stream. It buffers without
// bound so the engine's cascade never blocks on a slow reader.
type Subscription struct {
	mu     sync.Mutex
	buf    []cluster.Outcome
	closed bool
	notify chan struct{}
}

func (sub *Subscription) push(o cluster.Outcome) {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	sub.buf = append(sub.buf, o)
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

func (sub *Subscription) close() {
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// Next blocks for the next outcome; ok is false once the server has
// drained and the buffered stream is exhausted (or the subscription
// was cancelled).
func (sub *Subscription) Next() (o cluster.Outcome, ok bool) {
	for {
		sub.mu.Lock()
		if len(sub.buf) > 0 {
			o = sub.buf[0]
			sub.buf = sub.buf[1:]
			sub.mu.Unlock()
			return o, true
		}
		if sub.closed {
			sub.mu.Unlock()
			return cluster.Outcome{}, false
		}
		sub.mu.Unlock()
		<-sub.notify
	}
}

// Drain takes every currently buffered outcome without blocking.
func (sub *Subscription) Drain() []cluster.Outcome {
	sub.mu.Lock()
	out := sub.buf
	sub.buf = nil
	sub.mu.Unlock()
	return out
}

// Cancel detaches the subscription: buffered outcomes remain readable,
// new ones are dropped, and Next reports exhaustion once the buffer
// empties.
func (sub *Subscription) Cancel() { sub.close() }
