package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"micstream/internal/cluster"
	"micstream/internal/schedtest"
	"micstream/internal/sim"
)

// FuzzFrontier drives random interleavings of concurrent submits,
// malformed submits, subscription churn and racing drains against the
// admission frontier, asserting the no-loss/no-duplication contract:
// every successfully admitted job completes exactly once with a sane
// lifecycle, every other submit reports a clean error, and the final
// drain always converges.
func FuzzFrontier(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{0, 5, 0, 5, 0})
	f.Add([]byte{6, 0, 6, 0, 5, 0})
	f.Add([]byte{5})
	f.Add([]byte{7, 0, 7, 0, 0, 0, 5, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		s, err := New(newCluster(t), WithQueueCap(8), WithBatchCap(3))
		if err != nil {
			t.Fatal(err)
		}
		sub := s.Subscribe()
		var wg sync.WaitGroup
		var landed int64
		for i, op := range ops {
			id := i
			switch op % 8 {
			case 5: // racing drain
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := s.Drain(30 * time.Second); err != nil {
						t.Error(err)
					}
				}()
			case 6: // malformed job: rejected or stopped, never admitted
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := s.Submit(cluster.Job{ID: id}); err == nil {
						t.Error("taskless job admitted")
					}
				}()
			case 7: // subscription churn
				s.Subscribe().Cancel()
			default: // submit
				wg.Add(1)
				go func() {
					defer wg.Done()
					switch _, err := s.Submit(ingestJob(id)); err {
					case nil:
						atomic.AddInt64(&landed, 1)
					case ErrStopped:
					default:
						t.Error(err)
					}
				}()
			}
		}
		wg.Wait()
		if err := s.Drain(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		outs := drainAll(sub)
		spans := make([]schedtest.Span, len(outs))
		for i, o := range outs {
			if o.Failed {
				t.Fatalf("job %d failed: %v", o.ID, s.Err())
			}
			spans[i] = schedtest.Span{
				ID: o.ID, Index: o.Index, Stream: o.Stream,
				Marks: []sim.Time{o.Arrival, o.Placed, o.Start, o.Done},
			}
		}
		schedtest.UniqueCompletion(t, "frontier", spans, int(atomic.LoadInt64(&landed)),
			[]string{"arrival", "placed", "start", "done"})
	})
}
