package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"micstream/internal/cluster"
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/obs"
	"micstream/internal/schedtest"
	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

// newCluster builds a fresh timing-only cluster; every call with the
// same options is configured identically, which is what the replay
// determinism tests rely on.
func newCluster(t *testing.T, opts ...cluster.Option) *cluster.Cluster {
	t.Helper()
	ctx, err := hstreams.Init(hstreams.Config{
		Devices:             2,
		Partitions:          2,
		StreamsPerPartition: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ingestJob is a one-kernel job whose content is a pure function of
// id, so every submitter goroutine produces the same job set no
// matter how the race lands.
func ingestJob(id int) cluster.Job {
	j := cluster.Job{
		ID:     id,
		Tenant: string(rune('A' + id%3)),
		Tasks: []*core.Task{{
			ID:         0,
			Cost:       device.KernelCost{Name: "ingest", Flops: 3e8 + 1e8*float64(id%4)},
			StreamHint: -1,
		}},
		Origin: -1,
	}
	if id%5 == 0 {
		j.Origin = id % 2
		j.StagingBytes = 2 << 20
	}
	return j
}

// drainAll reads a subscription to exhaustion.
func drainAll(sub *Subscription) []cluster.Outcome {
	var out []cluster.Outcome
	for {
		o, ok := sub.Next()
		if !ok {
			return out
		}
		out = append(out, o)
	}
}

// The acceptance bar: 8 submitter goroutines race through the
// frontier, and the recorded admission sequence replayed
// single-threaded reproduces the full outcome stream bit for bit —
// the service-mode analogue of the observers-never-perturb test.
func TestConcurrentIngestReplaysBitIdentically(t *testing.T) {
	const goroutines, perG = 8, 25
	opts := []cluster.Option{cluster.WithPlacement(cluster.Predicted()), cluster.WithStealing(0)}
	s, err := New(newCluster(t, opts...))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := s.Submit(ingestJob(g*perG + i)); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	live := drainAll(sub)
	if len(live) != goroutines*perG {
		t.Fatalf("live stream carried %d outcomes, want %d", len(live), goroutines*perG)
	}

	batches := s.Batches()
	if len(batches) == 0 {
		t.Fatal("no batches recorded")
	}
	var replayed []cluster.Outcome
	if _, err := Replay(newCluster(t, opts...), batches, func(o cluster.Outcome) {
		replayed = append(replayed, o)
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		for i := range live {
			if i >= len(replayed) || !reflect.DeepEqual(live[i], replayed[i]) {
				t.Fatalf("outcome stream diverges at %d:\nlive:   %+v\nreplay: %+v", i, live[i], safeAt(replayed, i))
			}
		}
		t.Fatalf("replay stream longer than live: %d vs %d", len(replayed), len(live))
	}
}

func safeAt(s []cluster.Outcome, i int) any {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

// Racing drains lose nothing: every Submit either lands (index +
// exactly one terminal outcome) or reports ErrStopped, and the two
// sets partition the submitters.
func TestDrainLosesNoJob(t *testing.T) {
	s, err := New(newCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe()
	const submitters = 16
	var wg sync.WaitGroup
	landed := make(chan int, submitters)
	stopped := make(chan int, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idx, err := s.Submit(ingestJob(g))
			switch err {
			case nil:
				landed <- idx
			case ErrStopped:
				stopped <- g
			default:
				t.Errorf("submitter %d: %v", g, err)
			}
		}(g)
	}
	// Race the drain against the submitters.
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(landed)
	close(stopped)
	nLanded := len(landed)
	if nLanded+len(stopped) != submitters {
		t.Fatalf("landed %d + stopped %d != %d submitters", nLanded, len(stopped), submitters)
	}
	outs := drainAll(sub)
	spans := make([]schedtest.Span, len(outs))
	for i, o := range outs {
		spans[i] = schedtest.Span{
			ID: o.ID, Index: o.Index, Stream: o.Stream,
			Marks: []sim.Time{o.Arrival, o.Placed, o.Start, o.Done},
		}
	}
	schedtest.UniqueCompletion(t, "drain", spans, nLanded,
		[]string{"arrival", "placed", "start", "done"})
	st := s.Stats()
	if st.Submitted != nLanded || st.Completed != nLanded {
		t.Fatalf("stats %d/%d, want %d admitted and completed", st.Submitted, st.Completed, nLanded)
	}
	if _, err := s.Submit(ingestJob(99)); err != ErrStopped {
		t.Fatalf("post-drain submit err = %v, want ErrStopped", err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatalf("Result after drain: %v", err)
	}
}

// A malformed job is rejected back to its own submitter; batchmates
// land normally.
func TestBadJobRejectedWithoutCollateral(t *testing.T) {
	s, err := New(newCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe()
	var wg sync.WaitGroup
	var badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, badErr = s.Submit(cluster.Job{ID: 7}) // no tasks
	}()
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ingestJob(1)); err != nil {
			t.Errorf("good job rejected: %v", err)
		}
	}()
	wg.Wait()
	if badErr == nil || !strings.Contains(badErr.Error(), "no tasks") {
		t.Fatalf("bad job err = %v, want validation error", badErr)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	outs := drainAll(sub)
	if len(outs) != 1 || outs[0].ID != 1 || outs[0].Failed {
		t.Fatalf("outcomes = %+v, want one completed job 1", outs)
	}
}

// Result before drain is refused; Drain is idempotent; a second
// subscription opened after close reports exhaustion immediately.
func TestLifecycleEdges(t *testing.T) {
	s, err := New(newCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err == nil {
		t.Fatal("Result before drain succeeded")
	}
	if _, err := s.Submit(ingestJob(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	late := s.Subscribe()
	if _, ok := late.Next(); ok {
		t.Fatal("post-drain subscription delivered an outcome")
	}
	r, err := s.Result()
	if err != nil || len(r.Jobs) != 1 {
		t.Fatalf("Result = (%d jobs, %v), want 1 job", len(r.Jobs), err)
	}
}

// The live observability surface: /metrics serves OpenMetrics
// exposition from the drain-instant snapshots, /flight the anomaly
// dumps, /stats the ingest counters — all readable while the run loop
// is hot.
func TestHandlerServesLiveMetricsAndFlight(t *testing.T) {
	rec := telemetry.NewRecorder()
	c := newCluster(t, cluster.WithTelemetry(rec))
	x := obs.NewExporter()
	f := obs.NewFlightRecorder(64)
	s, err := New(c, WithExporter(x), WithFlight(f))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	stopProbe := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		// Hammer the endpoints while jobs flow, so the race detector
		// sees HTTP reads interleaved with run-loop writes.
		defer close(probeDone)
		for {
			select {
			case <-stopProbe:
				return
			default:
			}
			for _, p := range []string{"/metrics", "/flight", "/stats"} {
				resp, err := http.Get(srv.URL + p)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if _, err := s.Submit(ingestJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stopProbe)
	<-probeDone
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	get := func(p string) string {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if m := get("/metrics"); !strings.Contains(m, "micstream_jobs_done") {
		t.Fatalf("/metrics missing exposition:\n%s", m)
	}
	if st := get("/stats"); !strings.Contains(st, "submitted 40") || !strings.Contains(st, "completed 40") {
		t.Fatalf("/stats wrong:\n%s", st)
	}
	get("/flight") // must serve without error even with no dumps
}

// Option validation: bad caps and observability without telemetry are
// rejected at construction.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
	if _, err := New(newCluster(t), WithQueueCap(0)); err == nil {
		t.Fatal("zero queue cap accepted")
	}
	if _, err := New(newCluster(t), WithBatchCap(-1)); err == nil {
		t.Fatal("negative batch cap accepted")
	}
	if _, err := New(newCluster(t), WithExporter(obs.NewExporter())); err == nil {
		t.Fatal("exporter without telemetry accepted")
	}
}
