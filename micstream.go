// Package micstream is a Go reproduction of "Evaluating the Performance
// Impact of Multiple Streams on the MIC-based Heterogeneous Platform"
// (Li et al., 2016, arXiv:1603.08619).
//
// It provides an hStreams-like multiple-streams programming model — an
// offload runtime where logical streams bind to partitions of a
// many-core coprocessor, transfers and kernels enqueue asynchronously
// with FIFO order per stream and events across streams — running on a
// deterministic simulated platform modeled after the paper's testbed
// (Intel Xeon Phi 31SP behind a half-duplex PCIe link).
//
// The package is organized as:
//
//   - Platform: a configured context (devices, partitions, streams);
//   - Buffer / Stream / Event: the asynchronous offload primitives;
//   - Task / RunTasks: the tiled-offload pipeline layer used by the
//     paper's applications (H2D*, kernel, D2H* per task, with
//     cross-stream dependencies);
//   - Tune and the Candidate* helpers: the paper's §V-C task- and
//     resource-granularity search with pruning heuristics;
//   - Model / TuneGuided: the analytic performance model that predicts
//     wall time for any (partitions, tiles) point and prunes the
//     search to its top candidates (DESIGN.md §8);
//   - Scheduler / Job / WithPolicy: online multi-tenant admission onto
//     the platform under fifo, rr, sjf or model-adaptive policies;
//   - RunExperiment: regenerates any figure of the paper's evaluation
//     plus the scheduler and model studies.
//
// Timing is virtual and exactly reproducible: performance numbers come
// from a discrete-event model calibrated against the paper (see
// DESIGN.md), while kernels can also execute real Go code on real data
// for functional verification.
package micstream

import (
	"fmt"
	"io"

	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/pcie"
	"micstream/internal/sim"
	"micstream/internal/trace"
)

// Platform is an initialized simulated heterogeneous system: one or
// more coprocessors partitioned into places with streams bound to them.
type Platform struct {
	ctx *hstreams.Context
}

// Option configures NewPlatform.
type Option func(*hstreams.Config)

// WithDevices sets the number of coprocessors (default 1).
func WithDevices(n int) Option {
	return func(c *hstreams.Config) { c.Devices = n }
}

// WithPartitions sets the number of partitions ("places") per device
// (default 1).
func WithPartitions(n int) Option {
	return func(c *hstreams.Config) { c.Partitions = n }
}

// WithStreamsPerPartition sets how many logical streams share each
// partition (default 1).
func WithStreamsPerPartition(n int) Option {
	return func(c *hstreams.Config) { c.StreamsPerPartition = n }
}

// WithFunctionalKernels enables the functional model: kernel bodies
// execute and transfers move real data. Without it the platform is
// timing-only (paper-scale experiments).
func WithFunctionalKernels() Option {
	return func(c *hstreams.Config) { c.ExecuteKernels = true }
}

// WithLink overrides the PCIe model: bandwidth in bytes/second and
// per-transfer latency in nanoseconds.
func WithLink(bandwidthBps float64, latencyNs int64) Option {
	return func(c *hstreams.Config) {
		c.Link.BandwidthBps = bandwidthBps
		c.Link.LatencyNs = latencyNs
	}
}

// WithFullDuplexLink lets H2D and D2H proceed concurrently — the
// ablation of the paper's serialized-transfers finding.
func WithFullDuplexLink() Option {
	return func(c *hstreams.Config) {
		if c.Link.BandwidthBps == 0 {
			c.Link = pcie.DefaultConfig()
		}
		c.Link.FullDuplex = true
	}
}

// WithDeviceConfig replaces the coprocessor model (default: the
// paper's Xeon Phi 31SP).
func WithDeviceConfig(cfg DeviceConfig) Option {
	return func(c *hstreams.Config) { c.Device = cfg }
}

// NewPlatform builds a platform. With no options it models the paper's
// testbed: one Xeon Phi 31SP with a single partition and stream behind
// a half-duplex PCIe link, timing-only.
func NewPlatform(opts ...Option) (*Platform, error) {
	cfg := hstreams.Config{Trace: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	ctx, err := hstreams.Init(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{ctx: ctx}, nil
}

// NumStreams reports the total logical stream count.
func (p *Platform) NumStreams() int { return p.ctx.NumStreams() }

// NumDevices reports the coprocessor count.
func (p *Platform) NumDevices() int { return p.ctx.NumDevices() }

// Stream returns logical stream i (device-major, partition-major).
func (p *Platform) Stream(i int) *Stream { return p.ctx.Stream(i) }

// Now reports the current virtual time.
func (p *Platform) Now() sim.Time { return p.ctx.Now() }

// Barrier blocks until every stream has drained and returns the
// virtual time afterwards.
func (p *Platform) Barrier() sim.Time { return p.ctx.Barrier() }

// HostWork advances the host clock by d nanoseconds of CPU-side work;
// device work already enqueued continues during the window.
func (p *Platform) HostWork(ns int64, label string) {
	p.ctx.HostWork(sim.Duration(ns), label)
}

// Elapsed reports the virtual time as a float64 number of seconds.
func (p *Platform) Elapsed() float64 { return p.ctx.Now().Seconds() }

// Gantt renders the recorded timeline as an ASCII chart.
func (p *Platform) Gantt(w io.Writer, width int) error {
	rec := p.ctx.Recorder()
	if rec == nil {
		return fmt.Errorf("micstream: platform has no trace recorder")
	}
	return rec.Gantt(w, width)
}

// OverlapFraction reports how much of the platform's transfer time was
// hidden behind kernel execution so far (temporal sharing achieved).
func (p *Platform) OverlapFraction() float64 {
	rec := p.ctx.Recorder()
	if rec == nil {
		return 0
	}
	return rec.TransferComputeOverlap()
}

// TransferBusy reports cumulative H2D plus D2H link occupancy.
func (p *Platform) TransferBusy() sim.Duration {
	rec := p.ctx.Recorder()
	if rec == nil {
		return 0
	}
	return rec.BusyTime(trace.H2D) + rec.BusyTime(trace.D2H)
}

// KernelBusy reports cumulative kernel occupancy (union across
// partitions).
func (p *Platform) KernelBusy() sim.Duration {
	rec := p.ctx.Recorder()
	if rec == nil {
		return 0
	}
	return rec.BusyTime(trace.Kernel)
}

// Context exposes the underlying runtime for advanced use (the
// experiment harness and tests).
func (p *Platform) Context() *hstreams.Context { return p.ctx }

// Xeon31SP returns the device model of the paper's coprocessor.
func Xeon31SP() DeviceConfig { return device.Xeon31SP() }

// DefaultLink returns the PCIe model calibrated to the paper's
// platform (≈6.5 GB/s, ≈10 µs setup, half-duplex).
func DefaultLink() LinkConfig { return pcie.DefaultConfig() }
