package micstream_test

import (
	"fmt"

	"micstream"
)

// The simplest offload: ship data, run a kernel, ship it back, on the
// simulated Xeon Phi 31SP. Virtual time is deterministic, so the
// output is stable.
func ExampleNewPlatform() {
	p, err := micstream.NewPlatform(micstream.WithFunctionalKernels())
	if err != nil {
		panic(err)
	}
	host := []float64{1, 2, 3, 4}
	buf := micstream.Alloc1D(p, "v", host)

	s := p.Stream(0)
	if _, err := s.EnqueueH2D(buf, 0, 4, 0); err != nil {
		panic(err)
	}
	s.EnqueueKernel(micstream.KernelCost{Name: "inc", Flops: 4}, 0,
		func(k *micstream.KernelCtx) {
			dev := micstream.DeviceSlice[float64](buf, k.DeviceIndex)
			for i := range dev {
				dev[i]++
			}
		})
	if _, err := s.EnqueueD2H(buf, 0, 4, 0); err != nil {
		panic(err)
	}
	p.Barrier()

	fmt.Println(host)
	// Output: [2 3 4 5]
}

// Pipelining tiles through multiple streams: four tasks on two
// partitions overlap their transfers with neighbours' kernels.
func ExampleRunTasks() {
	p, err := micstream.NewPlatform(micstream.WithPartitions(2))
	if err != nil {
		panic(err)
	}
	buf := micstream.AllocVirtual(p, "data", 4<<20, 4)
	var tasks []*micstream.Task
	for i := 0; i < 4; i++ {
		off := i * buf.Len() / 4
		tasks = append(tasks, &micstream.Task{
			ID:         i,
			H2D:        []micstream.TransferSpec{micstream.Xfer(buf, off, buf.Len()/4)},
			Cost:       micstream.KernelCost{Name: "work", Flops: 5e9},
			D2H:        []micstream.TransferSpec{micstream.Xfer(buf, off, buf.Len()/4)},
			StreamHint: -1,
		})
	}
	res, err := micstream.RunTasks(p, tasks, 4*5e9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("overlap achieved: %v\n", res.OverlapFraction > 0.3)
	// Output: overlap achieved: true
}

// The paper's §V-C pruning: candidate partition counts are the
// divisors of the 31SP's 56 usable cores.
func ExampleCandidatePartitions() {
	fmt.Println(micstream.CandidatePartitions(micstream.Xeon31SP()))
	// Output: [1 2 4 7 8 14 28 56]
}

// Route device-resident jobs across two MICs with the model-driven
// placement policy: the first job runs on its home device for free,
// and balancing the other two across the cluster pays the staged
// transfer both times — predicted placement charges that price into
// its scores before committing. Virtual time is deterministic, so the
// output is stable.
func ExampleNewCluster() {
	c, err := micstream.NewCluster(
		micstream.WithClusterDevices(2),
		micstream.WithClusterPartitions(1),
	)
	if err != nil {
		panic(err)
	}
	p := micstream.ClusterPlatform(c)
	buf := micstream.AllocVirtual(p, "tiles", 3<<20, 1)
	job := func(id, origin int) micstream.ClusterJob {
		return micstream.ClusterJob{
			ID: id,
			Tasks: []*micstream.Task{{
				ID:         0,
				H2D:        []micstream.TransferSpec{micstream.Xfer(buf, id<<20, 1<<20)},
				Cost:       micstream.KernelCost{Name: "work", Flops: 5e9},
				D2H:        []micstream.TransferSpec{micstream.Xfer(buf, id<<20, 1<<20)},
				StreamHint: -1,
			}},
			Origin:       origin,
			StagingBytes: 1 << 20,
		}
	}
	r, err := c.Run([]micstream.ClusterJob{job(0, 0), job(1, 0), job(2, 1)})
	if err != nil {
		panic(err)
	}
	for _, o := range r.Jobs {
		fmt.Printf("job %d -> device %d (staged %v)\n", o.ID, o.Device, o.Staged)
	}
	fmt.Printf("placement %s, %d staged, makespan %v\n", r.Placement, r.StagedJobs, r.Makespan)
	// Output:
	// job 0 -> device 0 (staged false)
	// job 1 -> device 1 (staged true)
	// job 2 -> device 1 (staged false)
	// placement predicted, 1 staged, makespan 11.218ms
}
