package micstream

import (
	"io"
	"time"

	"micstream/internal/cluster"
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/experiments"
	"micstream/internal/hstreams"
	"micstream/internal/model"
	"micstream/internal/obs"
	"micstream/internal/pcie"
	"micstream/internal/residency"
	"micstream/internal/sched"
	"micstream/internal/sim"
	"micstream/internal/telemetry"
	"micstream/internal/trace"
	"micstream/internal/workload"
)

// Core offload primitives, re-exported from the runtime layer.
type (
	// Stream is one logical FIFO pipeline bound to a device
	// partition; see Platform.Stream.
	Stream = hstreams.Stream
	// Event marks the completion of an enqueued action and can gate
	// actions on other streams.
	Event = hstreams.Event
	// Buffer is a typed allocation visible to host and devices.
	Buffer = hstreams.Buffer
	// KernelCtx is passed to kernel bodies in the functional model.
	KernelCtx = hstreams.KernelCtx
	// KernelCost describes a kernel invocation to the timing model.
	KernelCost = device.KernelCost
	// DeviceConfig parameterizes the coprocessor model.
	DeviceConfig = device.Config
	// LinkConfig parameterizes the PCIe model.
	LinkConfig = pcie.Config
	// Time is a point in virtual time (nanoseconds).
	Time = sim.Time
	// Duration is a span of virtual time (nanoseconds).
	Duration = sim.Duration
	// TraceSpan is one recorded resource-occupancy interval (H2D, EXE,
	// D2H) from the platform's span recorder.
	TraceSpan = trace.Span
)

// Pipeline layer, re-exported from the core package.
type (
	// Task is one tiled-offload unit: input transfers, a kernel, and
	// output transfers, with optional dependencies on other tasks.
	Task = core.Task
	// TransferSpec names a buffer range a task moves.
	TransferSpec = core.TransferSpec
	// Result summarizes a run (wall time, GFLOPS, overlap metrics).
	Result = core.Result
	// PhaseEvents indexes the completion events of an enqueued phase.
	PhaseEvents = core.PhaseEvents
	// SearchSpace is a (partitions × tiles) tuning space.
	SearchSpace = core.SearchSpace
	// TuneResult is the outcome of a granularity search.
	TuneResult = core.TuneResult
	// EvalFunc measures one (P, T) configuration for the tuner.
	EvalFunc = core.EvalFunc
)

// Alloc1D registers a host slice as a buffer usable by every device of
// the platform; D2H transfers write back into it.
func Alloc1D[T any](p *Platform, name string, host []T) *Buffer {
	return hstreams.Alloc1D(p.ctx, name, host)
}

// AllocVirtual registers a data-less buffer (element count × element
// size) for timing-only experiments.
func AllocVirtual(p *Platform, name string, elems, elemSize int) *Buffer {
	return hstreams.AllocVirtual(p.ctx, name, elems, elemSize)
}

// DeviceSlice returns buffer b's device-resident shadow on device
// devIdx (functional model).
func DeviceSlice[T any](b *Buffer, devIdx int) []T {
	return hstreams.DeviceSlice[T](b, devIdx)
}

// HostSlice returns buffer b's host-side slice.
func HostSlice[T any](b *Buffer) []T { return hstreams.HostSlice[T](b) }

// Xfer builds an ungated transfer spec over [off, off+n) of buf.
func Xfer(buf *Buffer, off, n int) TransferSpec { return core.Xfer(buf, off, n) }

// XferAfter builds a transfer spec gated on another task's completion
// (cross-device staging).
func XferAfter(buf *Buffer, off, n, afterTask int) TransferSpec {
	return core.XferAfter(buf, off, n, afterTask)
}

// EnqueuePhase enqueues tasks onto the platform's streams without
// synchronizing; see the core package for ordering rules.
func EnqueuePhase(p *Platform, tasks []*Task) (*PhaseEvents, error) {
	return core.EnqueuePhase(p.ctx, tasks)
}

// RunTasks enqueues tasks, waits for completion, and summarizes the
// run. flops (optional, 0 to skip) enables the GFLOPS metric.
func RunTasks(p *Platform, tasks []*Task, flops float64) (Result, error) {
	return core.Run(p.ctx, tasks, flops)
}

// Tune evaluates every point of a search space and returns the fastest
// configuration.
func Tune(space SearchSpace, eval EvalFunc) (TuneResult, error) {
	return core.Tune(space, eval)
}

// TuneCoordinateDescent searches one axis at a time (O(|P|+|T|) per
// round) — the search-cost reduction beyond the paper's pruning rules.
func TuneCoordinateDescent(space SearchSpace, eval EvalFunc, rounds int) (TuneResult, error) {
	return core.TuneCoordinateDescent(space, eval, rounds)
}

// ExhaustiveSpace is the unpruned [1,maxP] × [1,maxT] tuning space.
func ExhaustiveSpace(maxP, maxT int) SearchSpace { return core.ExhaustiveSpace(maxP, maxT) }

// HeuristicSpace is the paper's §V-C pruned space: P restricted to
// divisors of the usable core count, T to multiples of P.
func HeuristicSpace(usableCores, maxT int) SearchSpace {
	return core.HeuristicSpace(usableCores, maxT)
}

// CandidatePartitions returns the pruned resource-granularity
// candidates for a device (divisors of its usable core count).
func CandidatePartitions(cfg DeviceConfig) []int { return core.CandidatePartitions(cfg) }

// CandidateTiles returns the pruned task-granularity candidates for a
// partition count (multiples of P, thinned geometrically).
func CandidateTiles(p, maxTiles int) []int { return core.CandidateTiles(p, maxTiles) }

// Analytic performance-model layer, re-exported from the model
// package: closed-form predictions of wall time, overlap and GFLOPS
// for any (partitions, tiles) configuration, so good configurations
// are picked instead of measured (DESIGN.md §8).
type (
	// Model predicts configurations for one platform and calibrates
	// itself against simulated probe runs (Fit).
	Model = model.Model
	// ModelWorkload describes a tunable application to the model as
	// barrier-separated phases parameterized by tile count.
	ModelWorkload = model.Workload
	// ModelPhase is one barrier-separated stage of a ModelWorkload.
	ModelPhase = model.Phase
	// Prediction is the model's estimate of one configuration.
	Prediction = model.Prediction
	// Candidate is one model-ranked (partitions, tiles) point.
	Candidate = model.Candidate
	// Probe is one Fit calibration measurement.
	Probe = model.Probe
)

// NewModel builds an uncalibrated performance model of a platform.
func NewModel(dev DeviceConfig, link LinkConfig) *Model { return model.New(dev, link) }

// UniformWorkload describes the generic overlappable workload: one
// phase of tiles evenly splitting a total kernel cost (template's
// Flops/Bytes are workload totals) and per-direction transfer volume.
func UniformWorkload(name string, h2dBytes, d2hBytes int64, template KernelCost) ModelWorkload {
	return model.Uniform(name, h2dBytes, d2hBytes, template)
}

// WorkloadFromTasks summarizes an already-tiled task list as a
// one-phase workload for prediction.
func WorkloadFromTasks(name string, tasks []*Task) ModelWorkload {
	return model.FromTasks(name, tasks)
}

// TuneGuided prunes a granularity search with a cheap predictor:
// every point is scored with predict, only the topK best-predicted
// candidates are measured with eval. Use Model.EvalFunc as predict to
// search with the analytic model.
func TuneGuided(space SearchSpace, predict, eval EvalFunc, topK int) (TuneResult, error) {
	return core.TuneGuided(space, predict, eval, topK)
}

// Online multi-tenant scheduling layer, re-exported from the sched
// package: many concurrent workloads contending for the platform's
// partitions and PCIe link, instead of RunTasks' one job at a time.
type (
	// Scheduler admits a stream of tenant-tagged jobs onto the
	// platform and dispatches them under a pluggable policy.
	Scheduler = sched.Scheduler
	// Job is one unit of admission: a []*Task workload with a tenant
	// label and a virtual arrival time.
	Job = sched.Job
	// SchedResult is the outcome of a Scheduler.Run: per-job
	// lifecycles, per-tenant throughput and latency percentiles, and
	// Jain's fairness indices.
	SchedResult = sched.Result
	// SchedPolicy decides dispatch order and placement; see FIFO,
	// RoundRobin, SJF and PolicyByName.
	SchedPolicy = sched.Policy
	// SchedOption configures NewScheduler.
	SchedOption = sched.Option
	// TenantStats is one tenant's aggregate accounting inside a
	// SchedResult.
	TenantStats = sched.TenantStats
	// JobOutcome is one job's recorded lifecycle inside a SchedResult.
	JobOutcome = sched.JobOutcome
	// ScenarioConfig parameterizes BuildScenario's synthetic
	// multi-tenant workloads.
	ScenarioConfig = sched.ScenarioConfig
)

// NewScheduler builds an online scheduler over the platform's streams.
func NewScheduler(p *Platform, opts ...SchedOption) (*Scheduler, error) {
	return sched.New(p.ctx, opts...)
}

// WithPolicy selects the scheduling policy (default FIFO).
func WithPolicy(policy SchedPolicy) SchedOption { return sched.WithPolicy(policy) }

// WithSchedulerSlicing enables preemptive job slicing on a standalone
// scheduler: each stream grant dispatches at most maxTasksPerSlice
// tasks and re-queues the remainder, so the policy re-plans at every
// slice boundary (DESIGN.md §13). 0 (the default) dispatches whole
// jobs.
func WithSchedulerSlicing(maxTasksPerSlice int) SchedOption {
	return sched.WithSlicing(maxTasksPerSlice)
}

// SchedSliceable reports whether a task list is dependency-ordered —
// every DependsOn target precedes its dependent — the shape slicing
// requires so any prefix of the remaining list is dependency-closed.
func SchedSliceable(tasks []*Task) error { return sched.Sliceable(tasks) }

// FIFOPolicy serves jobs in arrival order on the lowest idle stream.
func FIFOPolicy() SchedPolicy { return sched.FIFO() }

// RoundRobinPolicy serves jobs in arrival order, rotating placement
// across partitions.
func RoundRobinPolicy() SchedPolicy { return sched.RoundRobin() }

// SJFPolicy serves the shortest queued job first on the least-loaded
// idle stream.
func SJFPolicy() SchedPolicy { return sched.SJF() }

// AdaptivePolicy re-divides the platform's streams among tenants in
// proportion to their model-predicted work mix, re-planning at
// admission/drain instants whenever the mix drifts.
func AdaptivePolicy() SchedPolicy { return sched.Adaptive() }

// AdaptivePolicyWithModel is AdaptivePolicy with a caller-supplied
// (e.g. Fit-calibrated) performance model.
func AdaptivePolicyWithModel(m *Model) SchedPolicy { return sched.AdaptiveWithModel(m) }

// PolicyByName returns a fresh "fifo", "rr", "sjf" or "adaptive"
// policy.
func PolicyByName(name string) (SchedPolicy, error) { return sched.ByName(name) }

// PolicyNames lists the built-in scheduling policies.
func PolicyNames() []string { return sched.Policies() }

// BuildScenario generates a deterministic synthetic multi-tenant job
// stream on the platform: four tenants submitting under a
// load-imbalance pattern ("balanced", "mild", "moderate", "severe")
// with seeded stochastic arrivals.
func BuildScenario(p *Platform, cfg ScenarioConfig) ([]Job, error) {
	return sched.BuildScenario(p.ctx, cfg)
}

// PatternNames lists the built-in load-imbalance patterns.
func PatternNames() []string { return sched.Patterns() }

// ArrivalNames lists the built-in arrival processes the scenario
// builders' Arrival fields (and the CLIs' -arrival flags) accept.
func ArrivalNames() []string { return workload.Names() }

// Multi-MIC cluster scheduling layer, re-exported from the cluster
// package: one per-device stream scheduler per simulated coprocessor
// behind a cluster-level admission queue with pluggable placement
// policies (DESIGN.md §9).
type (
	// Cluster routes tenant-tagged jobs across the devices of a
	// multi-MIC platform under a placement policy.
	Cluster = cluster.Cluster
	// ClusterJob is one unit of cluster admission: a job plus the
	// data-placement fields (origin device, staging volume).
	ClusterJob = cluster.Job
	// ClusterResult is the outcome of a Cluster.Run: per-job
	// lifecycles, per-device utilization, per-tenant accounting, and
	// the staging traffic the placement caused.
	ClusterResult = cluster.Result
	// ClusterOutcome is one job's recorded lifecycle inside a
	// ClusterResult.
	ClusterOutcome = cluster.Outcome
	// ClusterMigration is one mid-job migration on a ClusterOutcome:
	// a sliced job's undispatched remainder re-binding to another
	// device at a drain instant (WithClusterSlicing +
	// WithClusterStealing).
	ClusterMigration = cluster.Migration
	// PlacementPolicy decides which device each job commits to; see
	// LeastLoadedPlacement, RoundRobinPlacement, PredictedPlacement
	// and PlaceBy.
	PlacementPolicy = cluster.Policy
	// DeviceView is one device's snapshot handed to a placement
	// policy at a decision instant.
	DeviceView = cluster.DeviceView
	// ClusterScenarioConfig parameterizes BuildClusterScenario's
	// synthetic cluster workloads.
	ClusterScenarioConfig = cluster.ScenarioConfig
	// ClusterWorkload describes a workload split across devices to
	// the analytic model (per-device shares plus staging traffic).
	ClusterWorkload = model.ClusterWorkload
	// ClusterPrediction is the model's estimate of one multi-device
	// configuration.
	ClusterPrediction = model.ClusterPrediction
	// ClusterEvalFunc measures one (devices, partitions, tiles)
	// configuration for the cluster tuner.
	ClusterEvalFunc = core.ClusterEvalFunc
	// ClusterTuneResult is the outcome of a joint device-count and
	// granularity search.
	ClusterTuneResult = core.ClusterTuneResult
	// Region declares a (dataset, tile-range) a cluster job reads or
	// writes — the unit the residency staging cache tracks per device
	// (DESIGN.md §11).
	Region = residency.Region
	// ResidencyStats are the staging cache's cumulative counters
	// (hits, cold misses, evictions, invalidations), spanning every
	// Run of the cluster; per-run splits live on ClusterResult.
	ResidencyStats = residency.Stats
	// Telemetry is the deterministic scheduling-event recorder the
	// cluster and scheduler emit into when telemetry is enabled
	// (DESIGN.md §12). A nil *Telemetry is a valid no-op sink.
	Telemetry = telemetry.Recorder
	// TelemetryEvent is one recorded scheduling decision.
	TelemetryEvent = telemetry.Event
	// TelemetryKind classifies a TelemetryEvent (admit, place,
	// dispatch, complete, fail, steal, hit, stage, evict, invalidate,
	// drain).
	TelemetryKind = telemetry.Kind
	// PlacementScore is one device's predicted completion instant
	// recorded at a place decision.
	PlacementScore = telemetry.Score
	// MetricsSnapshot is the cluster's state captured at one drain
	// instant: per-device utilization and queue state, per-tenant
	// throughput and tail latency, and Jain's fairness index.
	MetricsSnapshot = telemetry.MetricsSnapshot
	// DeviceMetrics is one device's slice of a MetricsSnapshot.
	DeviceMetrics = telemetry.DeviceMetrics
	// TenantMetrics is one tenant's slice of a MetricsSnapshot.
	TenantMetrics = telemetry.TenantMetrics
)

// Explanation layer, re-exported from the obs package: per-job causal
// timelines folded from the telemetry event log, the model-drift
// audit, the live OpenMetrics exporter, and the deterministic flight
// recorder (DESIGN.md §14).
type (
	// JobTimeline is one job's folded causal history: lifecycle
	// instants plus an exact phase partition of its latency (place
	// wait, commit wait, exec, slice wait, migration).
	JobTimeline = obs.Timeline
	// TimelinePhase is one named slice of a JobTimeline's latency.
	TimelinePhase = obs.Phase
	// TimelineBreakdown aggregates phase partitions over a group of
	// jobs (per tenant, per device) — the "where time goes" row.
	TimelineBreakdown = obs.PhaseBreakdown
	// DriftReport is the model-drift audit of an event log: predicted
	// completion scores and grant estimates compared against realized
	// outcomes, histogrammed per tenant and regime.
	DriftReport = obs.DriftReport
	// DriftSample is one predicted-vs-actual comparison in a
	// DriftReport.
	DriftSample = obs.DriftSample
	// DriftGroup is one sample group's error histogram and summary.
	DriftGroup = obs.DriftGroup
	// DriftMeta is the provenance block of a DRIFT_<run>.json
	// artifact.
	DriftMeta = obs.DriftMeta
	// OpenMetricsExporter renders the latest MetricsSnapshot in the
	// OpenMetrics (Prometheus) text exposition format.
	OpenMetricsExporter = obs.Exporter
	// FlightRecorder keeps a bounded ring of recent telemetry events,
	// dumped on job failure or p95 threshold breach.
	FlightRecorder = obs.FlightRecorder
	// FlightDump is one triggered flight-recorder capture.
	FlightDump = obs.FlightDump
)

// FoldTimelines reduces an event log to per-job causal timelines in
// admission order: for every completed job the five attributed phases
// sum exactly to the observed latency (DESIGN.md §14).
func FoldTimelines(events []TelemetryEvent) []JobTimeline { return obs.Fold(events) }

// TimelinesByTenant aggregates completed timelines per tenant, sorted
// by tenant label.
func TimelinesByTenant(ts []JobTimeline) []TimelineBreakdown { return obs.ByTenant(ts) }

// TimelinesByDevice aggregates completed timelines per final device.
func TimelinesByDevice(ts []JobTimeline) []TimelineBreakdown { return obs.ByDevice(ts) }

// WriteTimeline renders one job's causal timeline as aligned text
// (the body of `miccluster -explain`).
func WriteTimeline(w io.Writer, t *JobTimeline) error { return obs.WriteTimeline(w, t) }

// WriteTimelineBreakdowns renders aggregate "where time goes" rows as
// an aligned table under a title.
func WriteTimelineBreakdowns(w io.Writer, title string, rows []TimelineBreakdown) error {
	return obs.WriteBreakdowns(w, title, rows)
}

// AuditDrift extracts predicted-vs-actual drift samples from an event
// log and histograms the errors per tenant and execution regime.
func AuditDrift(events []TelemetryEvent) *DriftReport { return obs.AuditDrift(events) }

// WriteDriftJSON renders a drift audit as the byte-deterministic
// DRIFT_<run>.json artifact.
func WriteDriftJSON(w io.Writer, r *DriftReport, meta DriftMeta) error {
	return obs.WriteDriftJSON(w, r, meta)
}

// NewOpenMetricsExporter returns an exporter with no snapshot yet.
// Wire it to a recorder with Attach (or a composite hook) and expose
// it with ServeHTTP/ListenAndServe; Render writes the exposition
// text.
func NewOpenMetricsExporter() *OpenMetricsExporter { return obs.NewExporter() }

// DefaultFlightCap is the flight recorder's default ring capacity.
const DefaultFlightCap = obs.DefaultFlightCap

// NewFlightRecorder returns a flight recorder retaining up to cap
// events (DefaultFlightCap if cap <= 0).
func NewFlightRecorder(cap int) *FlightRecorder { return obs.NewFlightRecorder(cap) }

// WriteMetricsJSON renders a drain-instant snapshot series as
// machine-readable, byte-deterministic JSON (the `miccluster
// -metrics-json` artifact).
func WriteMetricsJSON(w io.Writer, snaps []MetricsSnapshot) error {
	return obs.WriteMetricsJSON(w, snaps)
}

// NewTelemetry returns an empty scheduling-event recorder to hand to
// WithClusterTelemetry or WithSchedulerTelemetry. The recorder is
// append-only across runs: a multi-run session logs one continuous
// timeline.
func NewTelemetry() *Telemetry { return telemetry.NewRecorder() }

// WriteChromeTrace renders spans and telemetry as Chrome trace-event
// JSON (chrome://tracing / Perfetto). Cluster users normally call
// Cluster.Trace, which feeds both recorders in; this entry point
// serves custom span sources.
func WriteChromeTrace(w io.Writer, spans []TraceSpan, rec *Telemetry) error {
	return telemetry.WriteChromeTrace(w, spans, rec)
}

// ClusterOption configures NewCluster: the platform shape
// (WithClusterDevices, WithClusterPartitions, WithClusterStreams) and
// the scheduler's knobs (WithPlacement, WithClusterQueueDepth,
// WithClusterStagingFactor, WithClusterDevicePolicy).
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	devices    int
	partitions int
	streams    int
	opts       []cluster.Option
}

// WithClusterDevices sets the cluster's coprocessor count (default 2).
func WithClusterDevices(n int) ClusterOption {
	return func(c *clusterConfig) { c.devices = n }
}

// WithClusterPartitions sets the partitions per device (default 4).
func WithClusterPartitions(n int) ClusterOption {
	return func(c *clusterConfig) { c.partitions = n }
}

// WithClusterStreams sets the streams per partition (default 1).
func WithClusterStreams(n int) ClusterOption {
	return func(c *clusterConfig) { c.streams = n }
}

// WithPlacement selects the placement policy (default predicted).
func WithPlacement(p PlacementPolicy) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithPlacement(p)) }
}

// WithClusterQueueDepth caps each device's committed-but-undispatched
// queue (default: the device's stream count); overflow waits in the
// cluster queue and binds late.
func WithClusterQueueDepth(n int) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithQueueDepth(n)) }
}

// WithClusterStagingFactor overrides the off-origin staging charge
// (default cluster.DefaultStagingFactor: the tile crosses PCIe twice).
func WithClusterStagingFactor(f float64) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithStagingFactor(f)) }
}

// WithResidency enables the device-resident staging cache: jobs
// declaring Reads regions stage only the tiles not already resident on
// their device — the cold-miss remainder — with capacityBytes of cache
// per device (0 = unbounded), LRU-evicted at drain instants, and
// invalidated when a job's Writes regions complete. The cache persists
// across Run calls, so repeated workloads run warm (DESIGN.md §11).
func WithResidency(capacityBytes int64) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithResidency(capacityBytes)) }
}

// WithClusterStealing enables drain-instant work stealing with the
// given steal threshold: whenever a device goes idle while another's
// committed backlog exceeds the threshold, committed-but-undispatched
// jobs may re-bind to the idle device when their model-predicted
// completion — including the Fig. 11 staging re-charge — improves
// (DESIGN.md §10). A zero threshold steals on any backlog; stealing is
// off by default (omit the option). Note the miccluster CLI differs:
// there -steal=0 is the unset flag (stealing stays disabled) and
// -steal=1ns is the steal-on-any-backlog idiom.
func WithClusterStealing(threshold time.Duration) ClusterOption {
	return func(c *clusterConfig) {
		c.opts = append(c.opts, cluster.WithStealing(sim.Duration(threshold.Nanoseconds())))
	}
}

// WithClusterSlicing enables preemptive job slicing on every device:
// a stream grant dispatches at most maxTasksPerSlice tasks and the
// job's remainder re-enters the device queue at the slice boundary,
// where lighter jobs can overtake it and — with WithClusterStealing
// also enabled — another device can migrate it mid-job, re-pricing
// staging and residency for only the tiles the remainder still needs
// (DESIGN.md §13). Task lists must be dependency-ordered
// (SchedSliceable). 0 (the default) dispatches whole jobs.
func WithClusterSlicing(maxTasksPerSlice int) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithSlicing(maxTasksPerSlice)) }
}

// WithClusterDevicePolicy sets the per-device stream-scheduling policy
// factory (default FIFO).
func WithClusterDevicePolicy(factory func() SchedPolicy) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithDevicePolicy(factory)) }
}

// WithClusterTelemetry attaches a scheduling-event recorder to the
// cluster: every admit/place/dispatch/complete/steal/residency/drain
// decision is logged with virtual timestamps, and every drain instant
// captures a MetricsSnapshot. Recording never feeds back into a
// decision — a traced run's ClusterResult is bit-identical to an
// untraced one (DESIGN.md §12). Use Cluster.Trace to export the log as
// Chrome trace-event JSON and Cluster.Metrics for the snapshots.
func WithClusterTelemetry(rec *Telemetry) ClusterOption {
	return func(c *clusterConfig) { c.opts = append(c.opts, cluster.WithTelemetry(rec)) }
}

// WithSchedulerTelemetry attaches a scheduling-event recorder to a
// standalone single-device scheduler: admissions, dispatches,
// completions and failures are logged with virtual timestamps.
func WithSchedulerTelemetry(rec *Telemetry) SchedOption {
	return sched.WithTelemetry(rec)
}

// NewCluster builds a multi-MIC platform and its cluster scheduler in
// one call: WithClusterDevices(2) × WithClusterPartitions(4) ×
// WithClusterStreams(1) by default, predicted placement. Use
// ClusterPlatform to reach the underlying platform (Gantt, buffers).
func NewCluster(opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{devices: 2, partitions: 4, streams: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	p, err := NewPlatform(
		WithDevices(cfg.devices),
		WithPartitions(cfg.partitions),
		WithStreamsPerPartition(cfg.streams),
	)
	if err != nil {
		return nil, err
	}
	return cluster.New(p.ctx, cfg.opts...)
}

// ClusterPlatform wraps a cluster's context as a Platform for the
// facade's platform-level helpers (Alloc1D, Gantt, Elapsed).
func ClusterPlatform(c *Cluster) *Platform { return &Platform{ctx: c.Context()} }

// LeastLoadedPlacement routes each job to the device holding the
// fewest jobs — the queue-depth heuristic, blind to job sizes.
func LeastLoadedPlacement() PlacementPolicy { return cluster.LeastLoaded() }

// RoundRobinPlacement rotates placement across devices.
func RoundRobinPlacement() PlacementPolicy { return cluster.RoundRobin() }

// PredictedPlacement routes each job to the device with the earliest
// model-predicted completion, including the cross-device staging term
// (DESIGN.md §9).
func PredictedPlacement() PlacementPolicy { return cluster.Predicted() }

// PredictedPlacementWithModel is PredictedPlacement with a
// caller-supplied (e.g. Fit-calibrated) performance model.
func PredictedPlacementWithModel(m *Model) PlacementPolicy {
	return cluster.PredictedWithModel(m)
}

// AffinityPlacement scores devices exactly like PredictedPlacement but
// breaks near-ties toward the device holding the largest resident
// fraction of the job's read set, herding each dataset's readers onto
// the device that staged it first. Without WithResidency it degenerates
// to PredictedPlacement (DESIGN.md §11).
func AffinityPlacement() PlacementPolicy { return cluster.Affinity() }

// StaticPlacement pins every job to one device — the baseline the
// placement property tests bound predicted placement against.
func StaticPlacement(dev int) PlacementPolicy { return cluster.Static(dev) }

// PlaceBy returns a fresh "affinity", "least-loaded", "round-robin"
// or "predicted" placement policy.
func PlaceBy(name string) (PlacementPolicy, error) { return cluster.ByName(name) }

// PlacementNames lists the built-in placement policies.
func PlacementNames() []string { return cluster.Policies() }

// CacheModeNames lists the residency-cache modes the miccluster CLI's
// -cache flag accepts ("off", "lru").
func CacheModeNames() []string { return cluster.CacheModes() }

// BuildClusterScenario generates a deterministic synthetic cluster
// workload on the cluster's platform: size-spread tiled jobs, a
// fraction device-resident, under a seeded arrival process.
func BuildClusterScenario(c *Cluster, cfg ClusterScenarioConfig) ([]ClusterJob, error) {
	return cluster.BuildScenario(c.Context(), cfg)
}

// SplitWorkload lifts a single-device model workload to the cluster
// form: staging reports the bytes staged through the host per round at
// each device count (nil = free split).
func SplitWorkload(w ModelWorkload, staging func(devices int) int64) ClusterWorkload {
	return model.Split(w, staging)
}

// TuneCluster searches device count and per-device (P, T) granularity
// jointly, the multi-MIC extension of Tune.
func TuneCluster(devices []int, space SearchSpace, eval ClusterEvalFunc) (ClusterTuneResult, error) {
	return core.TuneCluster(devices, space, eval)
}

// TuneClusterGuided prunes the joint search with a cheap predictor
// (e.g. Model.ClusterEvalFunc); only the topK best-predicted
// candidates are measured.
func TuneClusterGuided(devices []int, space SearchSpace, predict, eval ClusterEvalFunc, topK int) (ClusterTuneResult, error) {
	return core.TuneClusterGuided(devices, space, predict, eval, topK)
}

// RunExperiment regenerates one of the paper's figures (e.g. "fig5",
// "fig9a", "fig11", "heuristics") or one of the scheduler studies
// ("fairness", "imbalance", "placement", "cluster-scaling",
// "stealing", "residency") and renders it to w as an aligned text
// table.
func RunExperiment(id string, w io.Writer) error {
	return runExperiment(id, w, false)
}

// RunExperimentCSV regenerates a figure as CSV for plotting tools.
func RunExperimentCSV(id string, w io.Writer) error {
	return runExperiment(id, w, true)
}

func runExperiment(id string, w io.Writer, csv bool) error {
	g, ok := experiments.Lookup(id)
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	t, err := g()
	if err != nil {
		return err
	}
	if csv {
		return t.FprintCSV(w)
	}
	return t.Fprint(w)
}

// ExperimentIDs lists every regenerable figure.
func ExperimentIDs() []string { return experiments.IDs() }

// UnknownExperimentError reports a RunExperiment id that is not in the
// registry.
type UnknownExperimentError struct {
	// ID is the unrecognized experiment id.
	ID string
}

// Error implements the error interface.
func (e *UnknownExperimentError) Error() string {
	return "micstream: unknown experiment " + e.ID
}
