module micstream

go 1.22
