package micstream

import (
	"fmt"
	"strings"
	"testing"
)

func TestWithLinkOverridesModel(t *testing.T) {
	run := func(opts ...Option) Duration {
		p, err := NewPlatform(opts...)
		if err != nil {
			t.Fatal(err)
		}
		buf := AllocVirtual(p, "v", 1<<20, 1)
		if _, err := p.Stream(0).EnqueueH2D(buf, 0, buf.Len(), 0); err != nil {
			t.Fatal(err)
		}
		return Duration(p.Barrier())
	}
	slow := run(WithLink(1e9, 0))
	fast := run(WithLink(10e9, 0))
	if fast*9 > slow {
		t.Fatalf("10x bandwidth should be ≈10x faster: %v vs %v", fast, slow)
	}
}

func TestContextExposesRuntime(t *testing.T) {
	p, err := NewPlatform(WithPartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Context() == nil || p.Context().NumStreams() != 3 {
		t.Fatal("Context accessor broken")
	}
	if p.NumDevices() != 1 {
		t.Fatal("device count wrong")
	}
}

func TestHostSliceFacade(t *testing.T) {
	p, err := NewPlatform(WithFunctionalKernels())
	if err != nil {
		t.Fatal(err)
	}
	host := []int32{5, 6}
	buf := Alloc1D(p, "v", host)
	got := HostSlice[int32](buf)
	if &got[0] != &host[0] {
		t.Fatal("HostSlice does not alias")
	}
}

// A full producer→staged-consumer flow through the facade: EnqueuePhase
// with XferAfter across two devices.
func TestFacadeCrossDeviceStaging(t *testing.T) {
	p, err := NewPlatform(WithDevices(2), WithFunctionalKernels())
	if err != nil {
		t.Fatal(err)
	}
	host := make([]float64, 128)
	buf := Alloc1D(p, "tile", host)
	producer := &Task{
		ID:   0,
		H2D:  []TransferSpec{Xfer(buf, 0, len(host))},
		Cost: KernelCost{Name: "produce", Flops: 1e6},
		Body: func(k *KernelCtx) {
			dev := DeviceSlice[float64](buf, k.DeviceIndex)
			for i := range dev {
				dev[i] = float64(i)
			}
		},
		D2H:        []TransferSpec{Xfer(buf, 0, len(host))},
		StreamHint: 0, // device 0
	}
	var consumed float64
	consumer := &Task{
		ID:   1,
		H2D:  []TransferSpec{XferAfter(buf, 0, len(host), 0)},
		Cost: KernelCost{Name: "consume", Flops: 1e6},
		Body: func(k *KernelCtx) {
			dev := DeviceSlice[float64](buf, k.DeviceIndex)
			for _, v := range dev {
				consumed += v
			}
		},
		StreamHint: 1, // device 1
	}
	ev, err := EnqueuePhase(p, []*Task{producer, consumer})
	if err != nil {
		t.Fatal(err)
	}
	p.Barrier()
	if !ev.Done[1].Done() {
		t.Fatal("consumer never finished")
	}
	want := float64(127*128) / 2
	if consumed != want {
		t.Fatalf("consumer saw %v, want %v — staging moved wrong data", consumed, want)
	}
}

func TestFacadeCoordinateDescent(t *testing.T) {
	space := SearchSpace{
		Partitions: []int{2, 4, 8},
		TilesFor:   func(int) []int { return []int{4, 8, 16} },
	}
	res, err := TuneCoordinateDescent(space, func(p, tiles int) (float64, error) {
		return float64((p-4)*(p-4) + (tiles-8)*(tiles-8)), nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 4 || res.Tiles != 8 {
		t.Fatalf("found (%d,%d), want (4,8)", res.Partitions, res.Tiles)
	}
}

func TestCandidateTilesFacade(t *testing.T) {
	tiles := CandidateTiles(7, 400)
	for _, v := range tiles[:len(tiles)-1] {
		if v%7 != 0 {
			t.Fatalf("tile %d not a multiple of 7", v)
		}
	}
}

func TestFacadeScheduler(t *testing.T) {
	p, err := NewPlatform(WithPartitions(4))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildScenario(p, ScenarioConfig{Pattern: "mild", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := PolicyByName("sjf")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(p, WithPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 10+20+30+40 {
		t.Fatalf("completed %d jobs, want 100", len(r.Jobs))
	}
	if r.JainSlowdown <= 0 || r.JainSlowdown > 1 {
		t.Fatalf("Jain index %v out of range", r.JainSlowdown)
	}
	if len(PolicyNames()) != 4 || len(PatternNames()) != 4 {
		t.Fatalf("policy/pattern listings incomplete: %v %v", PolicyNames(), PatternNames())
	}
	// The platform's virtual clock advanced with the schedule.
	if p.Elapsed() <= 0 {
		t.Fatal("platform clock did not advance")
	}
}

func TestFacadeSchedExperiments(t *testing.T) {
	ids := ExperimentIDs()
	for _, want := range []string{"fairness", "imbalance"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("ExperimentIDs() missing %q: %v", want, ids)
		}
	}
	var buf strings.Builder
	if err := RunExperiment("imbalance", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "severe") {
		t.Fatal("imbalance table missing the severe pattern")
	}
}

func TestFacadeCluster(t *testing.T) {
	pol, err := PlaceBy("predicted")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(
		WithClusterDevices(2),
		WithClusterPartitions(2),
		WithClusterStreams(2),
		WithPlacement(pol),
		WithClusterQueueDepth(4),
		WithClusterStagingFactor(2),
		WithClusterDevicePolicy(FIFOPolicy),
	)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildClusterScenario(c, ClusterScenarioConfig{
		Seed: 9, AffinityFraction: 0.5, Origins: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 48 {
		t.Fatalf("completed %d jobs, want 48", len(r.Jobs))
	}
	if r.Makespan <= 0 || len(r.Devices) != 2 {
		t.Fatalf("bad cluster result: makespan %v, %d devices", r.Makespan, len(r.Devices))
	}
	if got := len(PlacementNames()); got != 4 {
		t.Fatalf("PlacementNames() has %d entries, want 4", got)
	}
	if ClusterPlatform(c).Elapsed() <= 0 {
		t.Fatal("cluster platform clock did not advance")
	}
	for _, name := range PlacementNames() {
		if p, err := PlaceBy(name); err != nil || p.Name() != name {
			t.Fatalf("PlaceBy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PlaceBy("nope"); err == nil {
		t.Fatal("unknown placement name should error")
	}
	if sp := StaticPlacement(1); sp.Name() != "static-1" {
		t.Fatalf("StaticPlacement name = %q", sp.Name())
	}
}

func TestFacadeTuneCluster(t *testing.T) {
	// The model picks device count and granularity jointly; a free
	// split should prefer the largest device count, a ruinously
	// expensive one should stay on one device.
	m := NewModel(Xeon31SP(), DefaultLink())
	w := UniformWorkload("bag", 64<<20, 64<<20, KernelCost{Name: "k", Flops: 4e10, Efficiency: 0.5})
	space := SearchSpace{
		Partitions: []int{2, 4, 8},
		TilesFor:   func(p int) []int { return []int{4 * p} },
	}
	free, err := TuneCluster([]int{1, 2, 4}, space, m.ClusterEvalFunc(SplitWorkload(w, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if free.Devices != 4 {
		t.Fatalf("free split tuned to %d devices, want 4", free.Devices)
	}
	costly := SplitWorkload(w, func(devices int) int64 { return int64(devices-1) * (1 << 30) })
	pinned, err := TuneCluster([]int{1, 2, 4}, space, m.ClusterEvalFunc(costly))
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Devices != 1 {
		t.Fatalf("ruinous staging tuned to %d devices, want 1", pinned.Devices)
	}
	guided, err := TuneClusterGuided([]int{1, 2, 4}, space,
		m.ClusterEvalFunc(costly), m.ClusterEvalFunc(costly), 2)
	if err != nil {
		t.Fatal(err)
	}
	if guided.Devices != 1 || guided.Evaluations != 2 {
		t.Fatalf("guided cluster tune = %+v, want 1 device in 2 evaluations", guided)
	}
}

func TestFacadeClusterExperiments(t *testing.T) {
	ids := ExperimentIDs()
	for _, want := range []string{"placement", "cluster-scaling"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("ExperimentIDs() missing %q: %v", want, ids)
		}
	}
}

// Admit a small multi-tenant job stream onto a two-partition platform
// and read back the per-tenant accounting. Virtual time is
// deterministic, so the output is stable.
func ExampleNewScheduler() {
	p, err := NewPlatform(WithPartitions(2))
	if err != nil {
		panic(err)
	}
	buf := AllocVirtual(p, "data", 1<<20, 1)
	job := func(id int, tenant string, arrivalNs int64, flops float64) Job {
		return Job{
			ID: id, Tenant: tenant, Arrival: Time(arrivalNs),
			Tasks: []*Task{{
				ID:         0,
				H2D:        []TransferSpec{Xfer(buf, 0, buf.Len())},
				Cost:       KernelCost{Name: "work", Flops: flops},
				D2H:        []TransferSpec{Xfer(buf, 0, buf.Len())},
				StreamHint: -1,
			}},
		}
	}
	s, err := NewScheduler(p)
	if err != nil {
		panic(err)
	}
	r, err := s.Run([]Job{
		job(0, "alice", 0, 4e9),
		job(1, "bob", 0, 1e9),
		job(2, "alice", 1_000_000, 1e9),
	})
	if err != nil {
		panic(err)
	}
	for _, ts := range r.Tenants {
		fmt.Printf("%s: %d jobs\n", ts.Tenant, ts.Jobs)
	}
	fmt.Printf("policy: %s, all done at %v\n", r.Policy, r.Makespan)
	// Output:
	// alice: 2 jobs
	// bob: 1 jobs
	// policy: fifo, all done at 8.487ms
}

// Select a scheduling policy with WithPolicy: while the first job
// occupies the single stream, two more queue up, and shortest-job-
// first dispatches the light one ahead of the medium one that arrived
// earlier.
func ExampleWithPolicy() {
	p, err := NewPlatform(WithPartitions(1))
	if err != nil {
		panic(err)
	}
	job := func(id int, name string, flops float64, arrivalNs int64) Job {
		return Job{ID: id, Tenant: name, Arrival: Time(arrivalNs), Tasks: []*Task{{
			ID: 0, Cost: KernelCost{Name: name, Flops: flops}, StreamHint: -1,
		}}}
	}
	s, err := NewScheduler(p, WithPolicy(SJFPolicy()))
	if err != nil {
		panic(err)
	}
	r, err := s.Run([]Job{
		job(0, "first", 4e9, 0),
		job(1, "medium", 8e9, 1000),
		job(2, "light", 1e9, 2000),
	})
	if err != nil {
		panic(err)
	}
	for _, o := range r.Jobs {
		fmt.Printf("job %d (%s) started at %v\n", o.ID, o.Tenant, o.Start)
	}
	// Output:
	// job 0 (first) started at 0ns
	// job 1 (medium) started at 5.127ms
	// job 2 (light) started at 4.085ms
}

func TestFacadeResidency(t *testing.T) {
	c, err := NewCluster(
		WithClusterDevices(2),
		WithClusterPartitions(1),
		WithPlacement(AffinityPlacement()),
		WithResidency(64<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildClusterScenario(c, ClusterScenarioConfig{
		Jobs: 16, Seed: 9, AffinityFraction: 1, Origins: []int{0},
		Datasets: 2, XferBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	declared := 0
	for _, j := range jobs {
		if len(j.Reads) > 0 {
			declared++
			if j.StagingDemand() != j.Reads[0].Bytes() {
				t.Fatalf("job %d demand %d != region bytes %d", j.ID, j.StagingDemand(), j.Reads[0].Bytes())
			}
		}
	}
	if declared != 16 {
		t.Fatalf("%d of 16 scenario jobs declare regions", declared)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.HitBytes == 0 {
		t.Error("repeated-dataset scenario produced no cache hits")
	}
	var demand int64
	for i, j := range jobs {
		if o := r.Jobs[i]; j.Origin >= 0 && j.Origin != o.Device && !o.Failed {
			demand += j.StagingDemand()
		}
	}
	if r.HitBytes+r.MissBytes != demand {
		t.Errorf("hits %d + misses %d != off-origin demand %d", r.HitBytes, r.MissBytes, demand)
	}
	var st ResidencyStats = c.Residency().Stats()
	if st.HitBytes != r.HitBytes {
		t.Errorf("tracker hits %d != result hits %d on the first run", st.HitBytes, r.HitBytes)
	}
	if got := CacheModeNames(); len(got) != 2 || got[0] != "off" || got[1] != "lru" {
		t.Errorf("CacheModeNames() = %v, want [off lru]", got)
	}
	if _, err := PlaceBy("affinity"); err != nil {
		t.Errorf("PlaceBy(affinity): %v", err)
	}
	// A region is usable directly through the facade alias.
	reg := Region{Dataset: "d", First: 0, Tiles: 2, TileBytes: 1 << 10}
	if reg.Bytes() != 2<<10 {
		t.Errorf("Region.Bytes() = %d", reg.Bytes())
	}
}
