// Modeltune: pick a configuration by predicting instead of measuring.
//
// The program describes a tiled offload workload to the analytic
// performance model, lets the model rank the whole (partitions, tiles)
// plane in microseconds, and then simulates only the model's pick and
// the textbook single-stream baseline to show the difference. This is
// the DESIGN.md §8 flow in miniature; cmd/mictune runs the full
// search-cost comparison and cmd/micmodel the full validation.
//
//	go run ./examples/modeltune
package main

import (
	"fmt"
	"log"

	"micstream"
)

const (
	flops    = 2e10     // total kernel work
	xferEach = 64 << 20 // bytes per direction
)

// simulate measures one configuration for real.
func simulate(partitions, tiles int) float64 {
	p, err := micstream.NewPlatform(micstream.WithPartitions(partitions))
	if err != nil {
		log.Fatal(err)
	}
	buf := micstream.AllocVirtual(p, "data", xferEach, 1)
	per := buf.Len() / tiles
	tasks := make([]*micstream.Task, 0, tiles)
	for i := 0; i < tiles; i++ {
		off := i * per
		n := per
		if i == tiles-1 {
			n = buf.Len() - off
		}
		tasks = append(tasks, &micstream.Task{
			ID:         i,
			H2D:        []micstream.TransferSpec{micstream.Xfer(buf, off, n)},
			Cost:       micstream.KernelCost{Name: "work", Flops: flops / float64(tiles)},
			D2H:        []micstream.TransferSpec{micstream.Xfer(buf, off, n)},
			StreamHint: -1,
		})
	}
	res, err := micstream.RunTasks(p, tasks, flops)
	if err != nil {
		log.Fatal(err)
	}
	return res.Wall.Seconds()
}

func main() {
	// 1. Describe the workload analytically: total work, total bytes,
	// everything else derived per tile.
	w := micstream.UniformWorkload("example", xferEach, xferEach,
		micstream.KernelCost{Name: "work", Flops: flops})
	m := micstream.NewModel(micstream.Xeon31SP(), micstream.DefaultLink())

	// 2. Rank the pruned (P, T) plane without simulating anything.
	space := micstream.HeuristicSpace(56, 64)
	best, err := m.BestConfig(w, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model pick over %d candidates: P=%d T=%d, predicted %.3f ms\n",
		space.Size(), best.Partitions, best.Tiles, best.Pred.Seconds()*1e3)

	// 3. Simulate just two points: the model's pick and the
	// single-stream baseline it is supposed to beat.
	picked := simulate(best.Partitions, best.Tiles)
	baseline := simulate(1, 1)
	fmt.Printf("simulated pick:      %.3f ms (prediction off by %+.1f%%)\n",
		picked*1e3, (best.Pred.Seconds()/picked-1)*100)
	fmt.Printf("simulated baseline:  %.3f ms (1 stream, 1 tile)\n", baseline*1e3)
	fmt.Printf("speedup picked without a search: %.2fx\n", baseline/picked)
}
