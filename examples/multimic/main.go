// Multimic: one streamed code, several coprocessors (the paper's §VI).
//
// The same bag of independent tiled tasks runs unmodified on one and
// on two simulated MICs — first through the raw platform (RunTasks
// spreading tasks round-robin over every device's streams), then
// through the cluster scheduler, which places whole jobs per device
// under a placement policy. Both paths share one facade: the tasks are
// identical, only the admission layer differs. The cluster run also
// shows why scaling is sub-linear when data has a home device: jobs
// placed off their origin stage tiles through the host, and the two
// placement policies are printed side by side to show the predicted
// policy spending less on staging than the load-blind baseline.
//
//	go run ./examples/multimic
package main

import (
	"fmt"
	"log"

	"micstream"
)

const (
	tiles    = 32
	tileMB   = 4
	tileWork = 6e9
)

// task builds one independent tiled offload unit over buf. Sizes are
// heterogeneous — every fourth tile carries 4× the work, like the
// uneven trailing blocks of a factorization — which is what separates
// count-based from time-based placement below.
func task(id int, buf *micstream.Buffer) *micstream.Task {
	work := tileWork
	if id%4 == 0 {
		work *= 4
	}
	return &micstream.Task{
		ID:         id,
		H2D:        []micstream.TransferSpec{micstream.Xfer(buf, id*tileMB<<20, tileMB<<20)},
		Cost:       micstream.KernelCost{Name: "work", Flops: work, Efficiency: 0.5},
		D2H:        []micstream.TransferSpec{micstream.Xfer(buf, id*tileMB<<20, tileMB<<20)},
		StreamHint: -1,
	}
}

// raw runs the bag through RunTasks on n devices — the paper's path:
// the runtime enumerates streams across all devices, the application
// only changes the platform option.
func raw(devices int) micstream.Duration {
	p, err := micstream.NewPlatform(
		micstream.WithDevices(devices),
		micstream.WithPartitions(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	buf := micstream.AllocVirtual(p, "data", tiles*tileMB<<20, 1)
	var tasks []*micstream.Task
	for t := 0; t < tiles; t++ {
		tasks = append(tasks, task(t, buf))
	}
	res, err := micstream.RunTasks(p, tasks, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res.Wall
}

// scheduled runs the same bag as cluster jobs, each tile resident on
// its home device (tile t lives on device t mod devices), under the
// given placement policy: every job routed away from its home stages
// its tile through the host first.
func scheduled(devices int, place string) *micstream.ClusterResult {
	pol, err := micstream.PlaceBy(place)
	if err != nil {
		log.Fatal(err)
	}
	c, err := micstream.NewCluster(
		micstream.WithClusterDevices(devices),
		micstream.WithClusterPartitions(4),
		micstream.WithPlacement(pol),
	)
	if err != nil {
		log.Fatal(err)
	}
	p := micstream.ClusterPlatform(c)
	buf := micstream.AllocVirtual(p, "data", tiles*tileMB<<20, 1)
	var jobs []micstream.ClusterJob
	for t := 0; t < tiles; t++ {
		jobs = append(jobs, micstream.ClusterJob{
			ID:           t,
			Tasks:        []*micstream.Task{task(t, buf)},
			Origin:       t % devices,
			StagingBytes: tileMB << 20,
		})
	}
	r, err := c.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("multi-MIC scaling with unmodified streamed code (paper §VI)")

	one := raw(1)
	two := raw(2)
	fmt.Printf("\nraw platform, independent tasks round-robined over all streams:\n")
	fmt.Printf("  1 MIC %v   2 MICs %v   speedup %.2fx (ideal 2x)\n",
		one, two, one.Seconds()/two.Seconds())

	fmt.Printf("\ncluster scheduler, same tasks as device-resident jobs, both placements side by side:\n")
	fmt.Printf("  %-14s  %-12s  %-12s  %-9s  %s\n", "placement", "1 MIC", "2 MICs", "speedup", "staged")
	for _, place := range []string{"least-loaded", "predicted"} {
		r1 := scheduled(1, place)
		r2 := scheduled(2, place)
		fmt.Printf("  %-14s  %-12v  %-12v  %.2fx      %d jobs, %d MB through the host\n",
			place, r1.Makespan, r2.Makespan,
			r1.Makespan.Seconds()/r2.Makespan.Seconds(), r2.StagedJobs, r2.StagedBytes>>20)
	}

	fmt.Println("\nthe second MIC helps, but stays under the projected 2x: any job that")
	fmt.Println("runs off its home device re-ships its tile over PCIe (Fig. 11's")
	fmt.Println("shortfall). least-loaded balances job counts and stages blindly; the")
	fmt.Println("predicted policy folds the staging price into its completion")
	fmt.Println("estimates, paying it exactly when the backlog makes it worthwhile.")
}
