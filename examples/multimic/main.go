// Multimic: one streamed code, several coprocessors (the paper's §VI).
//
// The same bag of independent tiled tasks runs unmodified on one and
// on two simulated MICs — the runtime enumerates streams across all
// devices, so the application only changes the platform option. The
// example also shows why scaling is sub-linear when tasks share data:
// a producer/consumer chain across devices must stage tiles through
// the host.
//
//	go run ./examples/multimic
package main

import (
	"fmt"
	"log"

	"micstream"
)

const (
	tiles    = 32
	tileMB   = 4
	tileWork = 6e9
)

// independent runs `tiles` fully independent tasks on n devices.
func independent(devices int) micstream.Duration {
	p, err := micstream.NewPlatform(
		micstream.WithDevices(devices),
		micstream.WithPartitions(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	buf := micstream.AllocVirtual(p, "data", tiles*tileMB<<20, 1)
	var tasks []*micstream.Task
	for t := 0; t < tiles; t++ {
		tasks = append(tasks, &micstream.Task{
			ID:         t,
			H2D:        []micstream.TransferSpec{micstream.Xfer(buf, t*tileMB<<20, tileMB<<20)},
			Cost:       micstream.KernelCost{Name: "work", Flops: tileWork, Efficiency: 0.5},
			D2H:        []micstream.TransferSpec{micstream.Xfer(buf, t*tileMB<<20, tileMB<<20)},
			StreamHint: -1,
		})
	}
	res, err := micstream.RunTasks(p, tasks, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res.Wall
}

// chained runs a dependency chain that zig-zags between devices, so
// every hop stages its tile through the host (D2H + H2D) — the extra
// traffic the paper blames for sub-2x multi-MIC scaling.
func chained(devices int) micstream.Duration {
	p, err := micstream.NewPlatform(
		micstream.WithDevices(devices),
		micstream.WithPartitions(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	buf := micstream.AllocVirtual(p, "tile", tileMB<<20, 1)
	var tasks []*micstream.Task
	streams := p.NumStreams()
	for t := 0; t < tiles; t++ {
		task := &micstream.Task{
			ID:         t,
			Cost:       micstream.KernelCost{Name: "stage", Flops: tileWork / 8, Efficiency: 0.5},
			D2H:        []micstream.TransferSpec{micstream.Xfer(buf, 0, buf.Len())},
			StreamHint: (t * streams / tiles) % streams, // walk across devices
		}
		if t == 0 {
			task.H2D = []micstream.TransferSpec{micstream.Xfer(buf, 0, buf.Len())}
		} else {
			task.DependsOn = []int{t - 1}
			task.H2D = []micstream.TransferSpec{micstream.XferAfter(buf, 0, buf.Len(), t-1)}
		}
		tasks = append(tasks, task)
	}
	res, err := micstream.RunTasks(p, tasks, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res.Wall
}

func main() {
	fmt.Println("multi-MIC scaling with unmodified streamed code (paper §VI)")

	one := independent(1)
	two := independent(2)
	fmt.Printf("\nindependent tasks:  1 MIC %v   2 MICs %v   speedup %.2fx (ideal 2x)\n",
		one, two, one.Seconds()/two.Seconds())

	c1 := chained(1)
	c2 := chained(2)
	fmt.Printf("dependent chain:    1 MIC %v   2 MICs %v   speedup %.2fx\n",
		c1, c2, c1.Seconds()/c2.Seconds())
	fmt.Println("\nthe chain gains nothing from the second device: every cross-device hop")
	fmt.Println("stages its tile through the host, which is why Fig. 11 lands below the")
	fmt.Println("projected 2x even for a well-partitioned factorization.")
}
