// Imaging: a multi-kernel iterative pipeline with per-iteration host
// decisions — the paper's SRAD shape — showing spatial sharing and the
// L2-residency effect behind its "unexpected" large-image win.
//
// Each iteration runs a device reduction (image statistics), a host
// step that turns the statistics into a threshold, and a device filter
// gated on that threshold. Kernels of one phase run concurrently on
// different partitions (spatial sharing); phases synchronize.
//
//	go run ./examples/imaging
package main

import (
	"fmt"
	"log"

	"micstream"
)

const (
	dim        = 512
	iterations = 8
	tasks      = 16
)

func main() {
	p, err := micstream.NewPlatform(
		micstream.WithPartitions(4),
		micstream.WithFunctionalKernels(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic "noisy" image: smooth ramp plus salt.
	img := make([]float64, dim*dim)
	for i := range img {
		img[i] = float64(i%dim) / dim * 100
		if i%97 == 0 {
			img[i] += 150 // speckle
		}
	}
	noisy := countAbove(img, 120)

	bufImg := micstream.Alloc1D(p, "img", img)
	partials := make([]float64, 2*tasks)
	bufStats := micstream.Alloc1D(p, "stats", partials)

	if _, err := p.Stream(0).EnqueueH2D(bufImg, 0, dim*dim, -1); err != nil {
		log.Fatal(err)
	}
	start := p.Barrier()

	rows := func(t int) (int, int) { return t * dim / tasks, (t + 1) * dim / tasks }

	for iter := 0; iter < iterations; iter++ {
		// Phase 1: per-task statistics (sum, sum²).
		var phase []*micstream.Task
		for t := 0; t < tasks; t++ {
			lo, hi := rows(t)

			phase = append(phase, &micstream.Task{
				ID:   t,
				Cost: micstream.KernelCost{Name: "stats", Flops: 2 * float64((hi-lo)*dim), Bytes: 8 * float64((hi-lo)*dim), Efficiency: 0.05},
				Body: func(k *micstream.KernelCtx) {
					dev := micstream.DeviceSlice[float64](bufImg, k.DeviceIndex)
					st := micstream.DeviceSlice[float64](bufStats, k.DeviceIndex)
					var s, s2 float64
					for i := lo * dim; i < hi*dim; i++ {
						s += dev[i]
						s2 += dev[i] * dev[i]
					}
					st[2*t], st[2*t+1] = s, s2
				},
				D2H:        []micstream.TransferSpec{micstream.Xfer(bufStats, 2*t, 2)},
				StreamHint: -1,
			})
		}
		if _, err := micstream.EnqueuePhase(p, phase); err != nil {
			log.Fatal(err)
		}
		p.Barrier()

		// Host: derive this iteration's clamp threshold.
		var sum float64
		for t := 0; t < tasks; t++ {
			sum += partials[2*t]
		}
		mean := sum / float64(dim*dim)
		threshold := mean * 1.8
		p.HostWork(30_000, "threshold")

		// Phase 2: clamp-and-diffuse filter, tiled, spatial sharing
		// only (cache-sensitive: small tiles stay L2-resident).
		phase = phase[:0]
		for t := 0; t < tasks; t++ {
			lo, hi := rows(t)
			phase = append(phase, &micstream.Task{
				ID: t,
				Cost: micstream.KernelCost{
					Name:            "filter",
					Flops:           6 * float64((hi-lo)*dim),
					Bytes:           48 * float64((hi-lo)*dim),
					WorkingSetBytes: int64((hi - lo) * dim * 16),
					CacheSensitive:  true,
					FitBonus:        0.3,
					Efficiency:      0.05,
				},
				Body: func(k *micstream.KernelCtx) {
					dev := micstream.DeviceSlice[float64](bufImg, k.DeviceIndex)
					for i := lo * dim; i < hi*dim; i++ {
						if dev[i] > threshold {
							dev[i] = threshold
						}
					}
				},
				StreamHint: -1,
			})
		}
		if _, err := micstream.EnqueuePhase(p, phase); err != nil {
			log.Fatal(err)
		}
		p.Barrier()
	}

	if _, err := p.Stream(0).EnqueueD2H(bufImg, 0, dim*dim, -1); err != nil {
		log.Fatal(err)
	}
	wall := p.Barrier() - start

	fmt.Printf("imaging pipeline: %dx%d image, %d iterations, %d tasks on 4 partitions\n",
		dim, dim, iterations, tasks)
	fmt.Printf("speckles above threshold: %d before, %d after\n", noisy, countAbove(img, 120))
	fmt.Printf("virtual time: %v (transfer/compute overlap %.0f%%: only the tiny per-phase partials)\n",
		micstream.Duration(wall), p.OverlapFraction()*100)
}

func countAbove(img []float64, v float64) int {
	n := 0
	for _, x := range img {
		if x > v {
			n++
		}
	}
	return n
}
