// Cluster: the model-driven multi-MIC scheduler end to end.
//
// Five acts. First the cluster tuner picks the device count and
// per-device granularity jointly from the analytic model alone —
// whether a second MIC pays for its staging traffic is a prediction,
// not a measurement. Then a cluster runs an imbalanced job mix under
// every placement policy, showing the predicted policy beating the
// load-blind baselines. Next one run is unpacked: per-device
// utilization, the staged jobs, and where the Fig. 11 shortfall went.
// Then work stealing re-binds committed jobs at drain instants on a
// stranded mix, recovering the makespan eager commitment wastes.
// Finally the residency cache turns the staging charge into a
// cold-miss-only cost: the same repeated-dataset workload runs once
// cold and once warm, and the second pass ships nothing.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"micstream"
)

func main() {
	// --- Act 1: pick the cluster configuration by prediction.
	//
	// A bag workload of 64 GFLOP with 256 MiB of transfers, where
	// splitting across devices stages 16 MiB per extra device through
	// the host (halo tiles, panel broadcasts).
	m := micstream.NewModel(micstream.Xeon31SP(), micstream.DefaultLink())
	w := micstream.UniformWorkload("bag", 128<<20, 128<<20,
		micstream.KernelCost{Name: "work", Flops: 64e9, Efficiency: 0.5})
	cw := micstream.SplitWorkload(w, func(devices int) int64 {
		return int64(devices-1) * (16 << 20)
	})

	space := micstream.SearchSpace{
		Partitions: []int{2, 4, 8, 14},
		TilesFor:   func(p int) []int { return []int{2 * p, 4 * p, 8 * p} },
	}
	best, err := micstream.TuneCluster([]int{1, 2, 4}, space, m.ClusterEvalFunc(cw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model-tuned cluster configuration (no simulation):\n")
	fmt.Printf("  devices=%d partitions=%d tiles=%d predicted %.3f ms (%d points scored)\n",
		best.Devices, best.Partitions, best.Tiles, best.Seconds*1e3, best.Evaluations)
	for _, d := range []int{1, 2, 4} {
		pred, err := m.PredictCluster(cw, d, best.Partitions, best.Tiles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d device(s): %8.3f ms  speedup %.2fx  staging %v\n",
			d, pred.Seconds()*1e3, pred.Speedup, pred.StagingTime)
	}

	// --- Act 2: an imbalanced mix under every placement policy.
	//
	// 48 jobs spanning a 64× size range, half of them resident on one
	// of the two devices, arriving in correlated bursts.
	fmt.Printf("\nplacement policies on an imbalanced device-resident mix:\n")
	var results []*micstream.ClusterResult
	for _, place := range micstream.PlacementNames() {
		pol, err := micstream.PlaceBy(place)
		if err != nil {
			log.Fatal(err)
		}
		c, err := micstream.NewCluster(
			micstream.WithClusterDevices(2),
			micstream.WithClusterPartitions(2),
			micstream.WithClusterStreams(2),
			micstream.WithPlacement(pol),
			micstream.WithClusterQueueDepth(8),
		)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err := micstream.BuildClusterScenario(c, micstream.ClusterScenarioConfig{
			Seed:             2016,
			Arrival:          "correlated",
			SizeSpread:       8,
			AffinityFraction: 0.5,
			Origins:          []int{0, 1},
			XferBytes:        4 << 20,
			WindowNs:         10_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
		fmt.Printf("  %-13s makespan %v  staged %2d jobs (%3d MB)\n",
			r.Placement, r.Makespan, r.StagedJobs, r.StagedBytes>>20)
	}

	// --- Act 3: unpack the predicted run.
	var pred *micstream.ClusterResult
	for _, r := range results {
		if r.Placement == "predicted" {
			pred = r
		}
	}
	fmt.Printf("\ninside the predicted run:\n")
	for _, ds := range pred.Devices {
		fmt.Printf("  device %d: %2d jobs (%d staged), busy %v, utilization %.0f%%\n",
			ds.Device, ds.Jobs, ds.Staged, ds.Busy, ds.Utilization*100)
	}
	slowest := pred.Jobs[0]
	for _, o := range pred.Jobs {
		if o.Latency() > slowest.Latency() {
			slowest = o
		}
	}
	fmt.Printf("  slowest job %d (%s): arrived %v, placed %v, started %v, done %v\n",
		slowest.ID, slowest.Tenant, slowest.Arrival, slowest.Placed, slowest.Start, slowest.Done)
	fmt.Println("\nthe placement layer sees time, not counts: a queue of two heavy jobs")
	fmt.Println("outweighs a queue of five light ones, and moving a tile off its home")
	fmt.Println("device is charged at the Fig. 11 staging price before it happens.")

	// --- Act 4: work stealing on a stranded mix.
	//
	// Every job's inputs live on device 0 and a deep committed queue
	// (depth 16) freezes placement decisions early. Without stealing,
	// device 1 drains while device 0 grinds its backlog; with -steal
	// semantics enabled, drain instants re-bind committed jobs — the
	// staging term re-charged on the new link, or un-charged when a
	// job is stolen back to its origin.
	fmt.Printf("\nwork stealing on a stranded mix (all inputs on device 0):\n")
	for _, stealing := range []bool{false, true} {
		opts := []micstream.ClusterOption{
			micstream.WithClusterDevices(2),
			micstream.WithClusterPartitions(2),
			micstream.WithClusterStreams(2),
			micstream.WithClusterQueueDepth(16),
		}
		label := "predicted only "
		if stealing {
			opts = append(opts, micstream.WithClusterStealing(time.Nanosecond))
			label = "with stealing  "
		}
		c, err := micstream.NewCluster(opts...)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err := micstream.BuildClusterScenario(c, micstream.ClusterScenarioConfig{
			Seed:             2016,
			Arrival:          "bursty",
			SizeSpread:       4,
			AffinityFraction: 1,
			Origins:          []int{0},
			XferBytes:        8 << 20,
			WindowNs:         10_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s makespan %v  steals %d  staged %2d jobs\n",
			label, r.Makespan, r.Steals, r.StagedJobs)
		for _, o := range r.Jobs {
			if o.Stolen {
				fmt.Printf("    job %2d re-bound %d→%d at %v (staged: %v)\n",
					o.ID, o.StolenFrom, o.Device, o.StolenAt, o.Staged)
			}
		}
	}
	fmt.Println("\na committed queue is a promise the scheduler no longer has to keep:")
	fmt.Println("at every drain instant an idle device may buy a queued job — at the")
	fmt.Println("staging price — whenever the model says the move finishes it sooner.")

	// --- Act 5: the residency cache, cold versus warm.
	//
	// 32 jobs cycle through 4 shared 8 MiB datasets homed on device 0.
	// The cluster runs them twice on the same cache: the first pass
	// pays each dataset's staging once per device (the cold misses),
	// the second pass finds every tile already resident and ships
	// nothing. The affinity policy does the herding — near-tied
	// devices lose to the one already holding the job's tiles.
	fmt.Printf("\nthe residency cache on a repeated-dataset mix (cold, then warm):\n")
	cached, err := micstream.NewCluster(
		micstream.WithClusterDevices(2),
		micstream.WithClusterPartitions(2),
		micstream.WithClusterStreams(2),
		micstream.WithPlacement(micstream.AffinityPlacement()),
		micstream.WithResidency(64<<20),
		micstream.WithClusterQueueDepth(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, pass := range []string{"cold pass", "warm pass"} {
		jobs, err := micstream.BuildClusterScenario(cached, micstream.ClusterScenarioConfig{
			Jobs:             32,
			Seed:             2016,
			Arrival:          "bursty",
			SizeSpread:       4,
			AffinityFraction: 1,
			Origins:          []int{0},
			Datasets:         4,
			XferBytes:        8 << 20,
			WindowNs:         10_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := cached.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: makespan %v, staged %2d jobs (%3d MB), hit %3d MB, cold-missed %2d MB\n",
			pass, r.Makespan, r.StagedJobs, r.StagedBytes>>20, r.HitBytes>>20, r.MissBytes>>20)
	}
	st := cached.Residency().Stats()
	fmt.Printf("  cache lifetime: %d MB hit / %d MB missed / %d MB evicted\n",
		st.HitBytes>>20, st.MissBytes>>20, st.EvictedBytes>>20)
	fmt.Println("\nstaging is a cache miss, not a tax: a tile shipped for one job stays")
	fmt.Println("valid until someone overwrites it, so the Fig. 11 charge is paid once")
	fmt.Println("per (dataset, device) — and a warm cluster pays it zero times.")
}
