// Quickstart: offload a computation through multiple streams and watch
// the transfers hide behind the kernels.
//
// The program doubles a vector on the simulated coprocessor twice —
// once with a single stream (the three offload stages strictly in
// sequence) and once with four streams pipelining eight tiles — then
// prints both virtual timelines. This is Fig. 1 of the paper, run
// instead of drawn.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"micstream"
)

const (
	elements = 1 << 20 // 1M float64 = 8 MB each way
	flops    = 40 * elements
)

func run(partitions, tiles int) {
	p, err := micstream.NewPlatform(
		micstream.WithPartitions(partitions),
		micstream.WithFunctionalKernels(),
	)
	if err != nil {
		log.Fatal(err)
	}

	host := make([]float64, elements)
	for i := range host {
		host[i] = float64(i)
	}
	buf := micstream.Alloc1D(p, "v", host)

	tasks := make([]*micstream.Task, 0, tiles)
	for t := 0; t < tiles; t++ {
		off := t * elements / tiles
		n := (t+1)*elements/tiles - off
		tasks = append(tasks, &micstream.Task{
			ID:   t,
			H2D:  []micstream.TransferSpec{micstream.Xfer(buf, off, n)},
			Cost: micstream.KernelCost{Name: "double", Flops: flops / float64(tiles), Efficiency: 0.05},
			Body: func(k *micstream.KernelCtx) {
				dev := micstream.DeviceSlice[float64](buf, k.DeviceIndex)
				for i := off; i < off+n; i++ {
					dev[i] *= 2
				}
			},
			D2H:        []micstream.TransferSpec{micstream.Xfer(buf, off, n)},
			StreamHint: -1,
		})
	}

	res, err := micstream.RunTasks(p, tasks, flops)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range host {
		if v != float64(i)*2 {
			log.Fatalf("wrong result at %d: %v", i, v)
		}
	}

	fmt.Printf("\n%d stream(s), %d tile(s): %v (overlap %.0f%%)\n",
		partitions, tiles, res.Wall, res.OverlapFraction*100)
	if err := p.Gantt(os.Stdout, 90); err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("quickstart: B[i] = 2*A[i] on the simulated Xeon Phi 31SP")
	run(1, 1) // non-streamed: H2D, EXE, D2H in strict sequence
	run(4, 8) // streamed: four partitions pipelining eight tiles
	fmt.Println("\nresults verified identical; the streamed run finishes sooner because")
	fmt.Println("tile k+1's transfer rides the link while tile k computes.")
}
