// Service: the cluster as a long-running concurrent-ingest server.
//
// Four acts. First a server opens over a cluster and eight goroutines
// race jobs through the admission frontier while a subscriber prints
// outcomes as they stream back — completions arrive while ingest is
// still running, not after a batch drain. Then the server drains
// gracefully and the recorded batch sequence is replayed
// single-threaded on a fresh cluster: the outcome stream is
// bit-identical, because wall-clock time only ever decided which
// epoch batch each job landed in (DESIGN.md §15). Next the embedded
// session API drives the same epoch machinery by hand — submit,
// run an epoch, watch residency stay warm into the next epoch.
// Finally the live observability surface: a second server run with
// telemetry attached serves OpenMetrics at /metrics while jobs flow.
//
//	go run ./examples/service
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"time"

	"micstream"
)

// job builds job id's spec as a pure function of the id, so every
// concurrent interleaving offers the same job set — the precondition
// for act 2's replay comparison.
func job(id int) micstream.ClusterJob {
	j := micstream.ClusterJob{
		ID:     id,
		Tenant: fmt.Sprintf("t%d", id%3),
		Tasks: []*micstream.Task{{
			Cost:       micstream.KernelCost{Name: "ingest", Flops: 2e8 + 1e8*float64(id%5)},
			StreamHint: -1,
		}},
		Origin: -1,
	}
	if id%4 == 0 { // every fourth job stages input from a device
		j.Origin = id % 2
		j.StagingBytes = 4 << 20
	}
	return j
}

func newCluster(opts ...micstream.ClusterOption) *micstream.Cluster {
	c, err := micstream.NewCluster(append([]micstream.ClusterOption{
		micstream.WithClusterDevices(2),
		micstream.WithClusterPartitions(2),
		micstream.WithClusterStreams(2),
	}, opts...)...)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	// --- Act 1: concurrent ingest with streaming outcomes.
	const submitters, perG = 8, 16
	srv, err := micstream.Serve(newCluster())
	if err != nil {
		log.Fatal(err)
	}
	sub := srv.Subscribe()

	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := srv.Submit(job(g*perG + i)); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()

	r, err := micstream.DrainServer(srv, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	var live []micstream.ClusterOutcome
	for {
		o, ok := sub.Next()
		if !ok {
			break
		}
		live = append(live, o)
	}
	st := srv.Stats()
	fmt.Printf("act 1: %d submitters ingested %d jobs in %d epochs; virtual makespan %v, %.1f GFlop/s\n",
		submitters, st.Completed, st.Epochs, r.Makespan, r.GFlops)
	fmt.Printf("  first completions streamed: ")
	for i := 0; i < 4 && i < len(live); i++ {
		fmt.Printf("job %d@%v  ", live[i].ID, live[i].Done)
	}
	fmt.Println()

	// --- Act 2: replay the recorded admission sequence.
	//
	// The server recorded which jobs each epoch admitted. Re-running
	// that sequence single-threaded on a fresh identical cluster
	// reproduces the live outcome stream byte for byte: concurrency
	// only ever chose the batch partition.
	var replayed []micstream.ClusterOutcome
	if _, err := micstream.ReplayBatches(newCluster(), srv.Batches(), func(o micstream.ClusterOutcome) {
		replayed = append(replayed, o)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("act 2: replayed %d batches single-threaded; bit-identical outcome stream: %v\n",
		len(srv.Batches()), reflect.DeepEqual(live, replayed))

	// --- Act 3: the embedded session, epoch by epoch.
	//
	// Serve wraps a cluster.Session; embedders can drive the epochs
	// directly. State stays warm across epochs: round-robin placement
	// sends one reader of the shared panel off-origin each epoch, so
	// epoch 1 stages its tiles cold and epoch 2's reader hits the
	// copy epoch 1 left resident — the reason service mode beats
	// repeated batch Runs.
	panel := micstream.Region{Dataset: "panel", Tiles: 8, TileBytes: 1 << 20}
	reader := func(id int) micstream.ClusterJob {
		j := job(id)
		j.Origin = 0 // panel lives on device 0
		j.Reads = []micstream.Region{panel}
		j.StagingBytes = panel.Bytes()
		return j
	}
	rr, err := micstream.PlaceBy("round-robin")
	if err != nil {
		log.Fatal(err)
	}
	cs := newCluster(micstream.WithResidency(0), micstream.WithPlacement(rr))
	sess, err := micstream.NewClusterSession(cs, nil)
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 1; epoch <= 2; epoch++ {
		base, err := sess.Submit([]micstream.ClusterJob{reader(100 + epoch), reader(200 + epoch)})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.RunEpoch(); err != nil {
			log.Fatal(err)
		}
		var miss, hit int64
		for i := 0; i < 2; i++ {
			o, ok := sess.Outcome(base + i)
			if !ok {
				log.Fatalf("outcome %d not terminal after its epoch", base+i)
			}
			miss += o.MissBytes
			hit += o.HitBytes
		}
		fmt.Printf("act 3: epoch %d: %d MiB cold-missed, %d MiB hit resident (virtual now %v)\n",
			epoch, miss>>20, hit>>20, sess.Now())
	}
	sess.Close()

	// --- Act 4: the live observability surface.
	rec := micstream.NewTelemetry()
	srv2, err := micstream.Serve(newCluster(micstream.WithClusterTelemetry(rec)),
		micstream.WithServeExporter(micstream.NewOpenMetricsExporter()),
		micstream.WithServeFlight(micstream.NewFlightRecorder(micstream.DefaultFlightCap)))
	if err != nil {
		log.Fatal(err)
	}
	web := httptest.NewServer(srv2.Handler()) // stands in for srv2.ListenAndServe(":9090")
	defer web.Close()
	for i := 0; i < 32; i++ {
		if _, err := srv2.Submit(job(i)); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "micstream_jobs_done") {
			fmt.Printf("act 4: live /metrics while ingesting: %s\n", line)
			break
		}
	}
	if _, err := micstream.DrainServer(srv2, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("act 4: drained; every submit either landed exactly once or got ErrServerStopped")
}
