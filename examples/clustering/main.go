// Clustering: an iterative, non-overlappable workload (the paper's
// Kmeans) that still profits from multiple streams.
//
// Every iteration broadcasts centroids, assigns points on the device,
// pulls back per-task partials and recomputes centroids on the host —
// a hard synchronization per iteration, so transfers cannot hide
// behind kernels. The win comes from the per-launch temporary-memory
// allocation whose cost grows with the partition's thread count
// (§V-B-1): narrow partitions allocate less, in parallel.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math"

	"micstream"
)

const (
	points     = 100_000
	features   = 8
	k          = 4
	iterations = 30
)

// cluster runs Lloyd's algorithm on the platform and returns the final
// centroids and the virtual wall time.
func cluster(partitions, tasks int) ([]float64, micstream.Duration) {
	p, err := micstream.NewPlatform(
		micstream.WithPartitions(partitions),
		micstream.WithFunctionalKernels(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Three well-separated blobs plus noise, deterministic.
	pts := make([]float64, points*features)
	for i := 0; i < points; i++ {
		blob := i % 3
		for f := 0; f < features; f++ {
			pts[i*features+f] = float64(blob*10) + float64((i*31+f*17)%100)/100
		}
	}
	centroids := make([]float64, k*features)
	copy(centroids, pts[:k*features])
	partials := make([]float64, tasks*(k*features+k))

	bufPts := micstream.Alloc1D(p, "points", pts)
	bufCen := micstream.Alloc1D(p, "centroids", centroids)
	bufPar := micstream.Alloc1D(p, "partials", partials)

	// Points go up once and stay resident.
	if _, err := p.Stream(0).EnqueueH2D(bufPts, 0, len(pts), -1); err != nil {
		log.Fatal(err)
	}
	start := p.Barrier()

	plen := k*features + k
	for iter := 0; iter < iterations; iter++ {
		phase := []*micstream.Task{{
			ID:           0,
			H2D:          []micstream.TransferSpec{micstream.Xfer(bufCen, 0, k*features)},
			StreamHint:   -1,
			TransferOnly: true,
		}}
		for t := 0; t < tasks; t++ {
			lo := t * points / tasks
			hi := (t + 1) * points / tasks
			t, lo, hi := t, lo, hi
			phase = append(phase, &micstream.Task{
				ID: t + 1,
				Cost: micstream.KernelCost{
					Name:                "assign",
					Flops:               3 * float64(hi-lo) * float64(k) * float64(features),
					AllocBytesPerThread: 160 << 10,
					Efficiency:          0.0465,
				},
				Body: func(kc *micstream.KernelCtx) {
					dp := micstream.DeviceSlice[float64](bufPts, kc.DeviceIndex)
					dc := micstream.DeviceSlice[float64](bufCen, kc.DeviceIndex)
					out := micstream.DeviceSlice[float64](bufPar, kc.DeviceIndex)
					base := t * plen
					for i := base; i < base+plen; i++ {
						out[i] = 0
					}
					for i := lo; i < hi; i++ {
						best, bestD := 0, math.Inf(1)
						for c := 0; c < k; c++ {
							d := 0.0
							for f := 0; f < features; f++ {
								diff := dp[i*features+f] - dc[c*features+f]
								d += diff * diff
							}
							if d < bestD {
								best, bestD = c, d
							}
						}
						for f := 0; f < features; f++ {
							out[base+best*features+f] += dp[i*features+f]
						}
						out[base+k*features+best]++
					}
				},
				D2H:        []micstream.TransferSpec{micstream.Xfer(bufPar, t*plen, plen)},
				DependsOn:  []int{0},
				StreamHint: -1,
			})
		}
		if _, err := micstream.EnqueuePhase(p, phase); err != nil {
			log.Fatal(err)
		}
		p.Barrier()

		// Host: fold partials into new centroids.
		for c := 0; c < k; c++ {
			count := 0.0
			sum := make([]float64, features)
			for t := 0; t < tasks; t++ {
				count += partials[t*plen+k*features+c]
				for f := 0; f < features; f++ {
					sum[f] += partials[t*plen+c*features+f]
				}
			}
			if count > 0 {
				for f := 0; f < features; f++ {
					centroids[c*features+f] = sum[f] / count
				}
			}
		}
		p.HostWork(50_000, "update centroids")
	}
	return centroids, micstream.Duration(p.Barrier() - start)
}

func main() {
	fmt.Printf("kmeans: %d points, %d features, k=%d, %d iterations\n\n",
		points, features, k, iterations)

	base, baseTime := cluster(1, 1)
	streamed, streamedTime := cluster(4, 4)

	for i := range base {
		if math.Abs(base[i]-streamed[i]) > 1e-9 {
			log.Fatalf("configurations disagree at centroid coord %d: %v vs %v", i, base[i], streamed[i])
		}
	}
	fmt.Printf("non-streamed (P=1, T=1): %v\n", baseTime)
	fmt.Printf("streamed     (P=4, T=4): %v\n", streamedTime)
	fmt.Printf("speedup: %.2fx — identical centroids, no overlap involved:\n", baseTime.Seconds()/streamedTime.Seconds())
	fmt.Println("narrow partitions slash the per-launch allocation that scales with thread count.")
}
