// Multitenant: share one simulated coprocessor between four tenants
// submitting jobs online, and compare scheduling policies.
//
// The program builds a hand-rolled workload — tenant "batch" submits
// a few heavy jobs, tenants "web-1" and "web-2" submit many light
// ones — and runs the identical job stream under FIFO and under
// shortest-job-first. SJF slashes the light tenants' tail latency at
// the cost of delaying the batch tenant: the scheduling trade-off the
// fairness experiment quantifies, observed directly.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"micstream"
)

// job builds one tiled offload job: bytes in, flops of kernel work,
// bytes out.
func job(p *micstream.Platform, id int, tenant string, arrivalNs int64, flops float64, bytes int) micstream.Job {
	in := micstream.AllocVirtual(p, fmt.Sprintf("in/%d", id), bytes, 1)
	out := micstream.AllocVirtual(p, fmt.Sprintf("out/%d", id), bytes, 1)
	return micstream.Job{
		ID:      id,
		Tenant:  tenant,
		Arrival: micstream.Time(arrivalNs),
		Tasks: []*micstream.Task{{
			ID:         0,
			H2D:        []micstream.TransferSpec{micstream.Xfer(in, 0, bytes)},
			Cost:       micstream.KernelCost{Name: tenant, Flops: flops, Bytes: float64(bytes)},
			D2H:        []micstream.TransferSpec{micstream.Xfer(out, 0, bytes)},
			StreamHint: -1, // the scheduler decides placement
		}},
	}
}

// workload submits 4 heavy batch jobs and 40 light web requests over
// the first 2 ms.
func workload(p *micstream.Platform) []micstream.Job {
	var jobs []micstream.Job
	id := 0
	for i := 0; i < 4; i++ {
		jobs = append(jobs, job(p, id, "batch", int64(i)*500_000, 2e9, 4<<20))
		id++
	}
	for i := 0; i < 40; i++ {
		tenant := fmt.Sprintf("web-%d", 1+i%2)
		jobs = append(jobs, job(p, id, tenant, int64(i)*50_000, 5e7, 64<<10))
		id++
	}
	return jobs
}

func run(policyName string) *micstream.SchedResult {
	p, err := micstream.NewPlatform(micstream.WithPartitions(4))
	if err != nil {
		log.Fatal(err)
	}
	policy, err := micstream.PolicyByName(policyName)
	if err != nil {
		log.Fatal(err)
	}
	s, err := micstream.NewScheduler(p, micstream.WithPolicy(policy))
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.Run(workload(p))
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("multitenant: 4 heavy batch jobs + 40 light web requests on 4 partitions")
	for _, policy := range []string{"fifo", "sjf"} {
		r := run(policy)
		fmt.Printf("\n%s (makespan %v, Jain over slowdown %.3f):\n", policy, r.Makespan, r.JainSlowdown)
		for _, ts := range r.Tenants {
			fmt.Printf("  %-6s %2d jobs  p50 %9v  p99 %9v  slowdown %.2f\n",
				ts.Tenant, ts.Jobs, ts.P50, ts.P99, ts.MeanSlowdown)
		}
	}
	fmt.Println("\nSJF lets the web requests cut ahead of the batch jobs: their p99")
	fmt.Println("collapses while the batch tenant absorbs the queueing delay.")
}
