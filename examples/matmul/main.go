// Matmul: a tiled matrix multiplication on the simulated coprocessor,
// the workload the paper's Figs. 8a/9a/10a study.
//
// C = A·B is split into a grid of output tiles; the A row-panels and
// B column-panels are shipped once each (transfer-only tasks), and each
// compute task gates on the two panels it consumes. The example runs
// a small functional problem (results verified against a host
// reference), then a paper-scale timing-only sweep over partition
// counts that shows the divisor-of-56 rule.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"
	"math"

	"micstream"
)

// buildTasks tiles C into grid×grid tasks over n×n matrices.
func buildTasks(p *micstream.Platform, bufA, bufBt, bufC *micstream.Buffer, n, grid int, functional bool) []*micstream.Task {
	bs := n / grid
	tasks := make([]*micstream.Task, 0, grid*(grid+2))
	panelA := func(i int) int { return i }
	panelB := func(j int) int { return grid + j }
	for i := 0; i < grid; i++ {
		tasks = append(tasks,
			&micstream.Task{
				ID:           panelA(i),
				H2D:          []micstream.TransferSpec{micstream.Xfer(bufA, i*bs*n, bs*n)},
				StreamHint:   -1,
				TransferOnly: true,
			},
			&micstream.Task{
				ID:           panelB(i),
				H2D:          []micstream.TransferSpec{micstream.Xfer(bufBt, i*bs*n, bs*n)},
				StreamHint:   -1,
				TransferOnly: true,
			})
	}
	cost := micstream.KernelCost{
		Name:           "gemm.tile",
		Flops:          2 * float64(bs) * float64(bs) * float64(n),
		Bytes:          (2*float64(bs)*float64(n) + float64(bs*bs)) * 4,
		Efficiency:     0.62,
		ScalingPenalty: 0.10,
	}
	for ti := 0; ti < grid; ti++ {
		for tj := 0; tj < grid; tj++ {
			ti, tj := ti, tj
			var body func(*micstream.KernelCtx)
			if functional {
				body = func(k *micstream.KernelCtx) {
					av := micstream.DeviceSlice[float32](bufA, k.DeviceIndex)
					btv := micstream.DeviceSlice[float32](bufBt, k.DeviceIndex)
					cv := micstream.DeviceSlice[float32](bufC, k.DeviceIndex)
					base := (ti*grid + tj) * bs * bs
					for r := 0; r < bs; r++ {
						for c := 0; c < bs; c++ {
							var sum float32
							for x := 0; x < n; x++ {
								sum += av[(ti*bs+r)*n+x] * btv[(tj*bs+c)*n+x]
							}
							cv[base+r*bs+c] = sum
						}
					}
				}
			}
			tasks = append(tasks, &micstream.Task{
				ID:         2*grid + ti*grid + tj,
				DependsOn:  []int{panelA(ti), panelB(tj)},
				Cost:       cost,
				Body:       body,
				D2H:        []micstream.TransferSpec{micstream.Xfer(bufC, (ti*grid+tj)*bs*bs, bs*bs)},
				StreamHint: -1,
			})
		}
	}
	return tasks
}

func functionalDemo() {
	const n, grid = 64, 4
	p, err := micstream.NewPlatform(micstream.WithPartitions(4), micstream.WithFunctionalKernels())
	if err != nil {
		log.Fatal(err)
	}
	a := make([]float32, n*n)
	bt := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%7) - 3
		bt[i] = float32(i%5) - 2
	}
	bufA := micstream.Alloc1D(p, "A", a)
	bufBt := micstream.Alloc1D(p, "Bt", bt)
	bufC := micstream.Alloc1D(p, "C", c)
	if _, err := micstream.RunTasks(p, buildTasks(p, bufA, bufBt, bufC, n, grid, true), 2*float64(n)*float64(n)*float64(n)); err != nil {
		log.Fatal(err)
	}
	// Verify one full row against a host reference.
	bs := n / grid
	for j := 0; j < n; j++ {
		var want float64
		for x := 0; x < n; x++ {
			want += float64(a[x]) * float64(bt[j*n+x])
		}
		got := float64(c[(0*grid+j/bs)*bs*bs+(j%bs)])
		if math.Abs(got-want) > 1e-3 {
			log.Fatalf("C[0,%d] = %v, want %v", j, got, want)
		}
	}
	fmt.Printf("functional %dx%d multiply on %d tiles: verified\n", n, n, grid*grid)
}

func paperScaleSweep() {
	const n, grid = 6000, 12
	fmt.Printf("\npaper-scale %dx%d GEMM, %d tiles, partition sweep:\n", n, n, grid*grid)
	fmt.Println("  (divisors of 56 avoid splitting a core's threads across streams)")
	for _, parts := range []int{4, 5, 7, 9, 14, 15, 28, 56} {
		p, err := micstream.NewPlatform(micstream.WithPartitions(parts))
		if err != nil {
			log.Fatal(err)
		}
		bufA := micstream.AllocVirtual(p, "A", n*n, 4)
		bufBt := micstream.AllocVirtual(p, "Bt", n*n, 4)
		bufC := micstream.AllocVirtual(p, "C", n*n, 4)
		res, err := micstream.RunTasks(p, buildTasks(p, bufA, bufBt, bufC, n, grid, false), 2*float64(n)*float64(n)*float64(n))
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if 56%parts == 0 {
			marker = "*"
		}
		fmt.Printf("  P=%-3d %s %6.1f GFLOPS  (%v)\n", parts, marker, res.GFlops, res.Wall)
	}
}

func main() {
	functionalDemo()
	paperScaleSweep()
}
