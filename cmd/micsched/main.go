// Command micsched runs the online multi-tenant scheduler over a
// synthetic mixed-tenant scenario and prints per-tenant accounting:
// throughput, latency percentiles, mean slowdown, and Jain's fairness
// indices.
//
// Usage:
//
//	micsched -policy=sjf -pattern=severe
//	micsched -policy=fifo -pattern=balanced -arrival=heavytail -seed=7
//	micsched -partitions=8 -streams=2 -scale=2 -window=30ms
//	micsched -explain=7 -policy=adaptive -pattern=severe
//
// Policies: fifo (arrival order, pack lowest stream), rr (arrival
// order, rotate across partitions), sjf (shortest job first,
// least-loaded placement), adaptive (model-predicted per-tenant
// stream shares, re-planned when the mix drifts). Patterns set the
// per-tenant offered load:
// balanced 20/20/20/20 through severe 5/10/40/80 jobs. Every run is a
// pure function of its flags — repeat a command and the virtual-time
// schedule is bit-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"text/tabwriter"
	"time"

	"micstream"
)

func main() {
	var (
		policy     = flag.String("policy", "fifo", "scheduling policy: fifo, rr, sjf, adaptive")
		pattern    = flag.String("pattern", "balanced", "load-imbalance pattern: balanced, mild, moderate, severe")
		arrival    = flag.String("arrival", "bursty", "arrival process: poisson, bursty, heavytail, diurnal, correlated")
		seed       = flag.Uint64("seed", 1, "scenario seed")
		scale      = flag.Int("scale", 1, "multiplier on per-tenant job counts")
		partitions = flag.Int("partitions", 4, "device partitions")
		streams    = flag.Int("streams", 2, "streams per partition")
		window     = flag.Duration("window", 20*time.Millisecond, "arrival window (virtual time)")
		jobs       = flag.Bool("jobs", false, "also print every job's lifecycle")
		explain    = flag.Int("explain", -1, "print the causal timeline for this job index plus where-time-goes tables (-1 disables)")
		list       = flag.Bool("list", false, "list policies and patterns")
	)
	flag.Parse()

	if *list {
		fmt.Println("policies:", micstream.PolicyNames())
		fmt.Println("patterns:", micstream.PatternNames())
		fmt.Println("arrivals:", micstream.ArrivalNames())
		return
	}
	switch {
	case *scale < 1:
		usageError("-scale must be positive, got %d", *scale)
	case *partitions < 1:
		usageError("-partitions must be positive, got %d", *partitions)
	case *streams < 1:
		usageError("-streams must be positive, got %d", *streams)
	case *window <= 0:
		usageError("-window must be positive, got %v", *window)
	case *explain < -1:
		usageError("-explain: job index must be -1 (disabled) or non-negative, got %d", *explain)
	}
	// Name-valued flags fail up front with a usage error instead of
	// deep inside a run: an unknown policy, pattern or arrival process
	// is a command-line mistake, not a runtime failure.
	pol, err := micstream.PolicyByName(*policy)
	if err != nil {
		usageError("-policy: %v", err)
	}
	if !slices.Contains(micstream.PatternNames(), *pattern) {
		usageError("-pattern: unknown load pattern %q (have %v)", *pattern, micstream.PatternNames())
	}
	if !slices.Contains(micstream.ArrivalNames(), *arrival) {
		usageError("-arrival: unknown arrival process %q (have %v)", *arrival, micstream.ArrivalNames())
	}

	p, err := micstream.NewPlatform(
		micstream.WithPartitions(*partitions),
		micstream.WithStreamsPerPartition(*streams),
	)
	if err != nil {
		fatal(err)
	}
	scenario, err := micstream.BuildScenario(p, micstream.ScenarioConfig{
		Pattern:  *pattern,
		Arrival:  *arrival,
		Seed:     *seed,
		JobScale: *scale,
		WindowNs: window.Nanoseconds(),
	})
	if err != nil {
		fatal(err)
	}
	// Telemetry is only recorded when the run will be explained; a
	// bare run keeps the zero-alloc disabled path.
	var rec *micstream.Telemetry
	schedOpts := []micstream.SchedOption{micstream.WithPolicy(pol)}
	if *explain >= 0 {
		rec = micstream.NewTelemetry()
		schedOpts = append(schedOpts, micstream.WithSchedulerTelemetry(rec))
	}
	s, err := micstream.NewScheduler(p, schedOpts...)
	if err != nil {
		fatal(err)
	}
	r, err := s.Run(scenario)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("policy=%s pattern=%s arrival=%s seed=%d: %d jobs over %d streams, makespan %v\n\n",
		r.Policy, *pattern, *arrival, *seed, len(r.Jobs), p.NumStreams(), r.Makespan)
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tjobs\tthrpt[job/s]\tp50\tp95\tp99\tslowdown")
	for _, ts := range r.Tenants {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%v\t%v\t%v\t%.2f\n",
			ts.Tenant, ts.Jobs, ts.Throughput, ts.P50, ts.P95, ts.P99, ts.MeanSlowdown)
	}
	tw.Flush()
	fmt.Printf("\nJain index: %.3f over slowdown (schedule fairness), %.3f over throughput (offered-load imbalance)\n",
		r.JainSlowdown, r.JainThroughput)

	if *jobs {
		fmt.Println()
		tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "job\ttenant\tstream\tarrival\tstart\tdone\twait\tlatency")
		for _, o := range r.Jobs {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%v\t%v\t%v\t%v\t%v\n",
				o.ID, o.Tenant, o.Stream, o.Arrival, o.Start, o.Done, o.Wait(), o.Latency())
		}
		tw.Flush()
	}

	if *explain >= 0 {
		timelines := micstream.FoldTimelines(rec.Events())
		var target *micstream.JobTimeline
		for i := range timelines {
			if timelines[i].Job == *explain {
				target = &timelines[i]
				break
			}
		}
		if target == nil {
			fatal(fmt.Errorf("-explain: job index %d not present in the run (have %d jobs)", *explain, len(timelines)))
		}
		fmt.Println()
		if err := micstream.WriteTimeline(os.Stdout, target); err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := micstream.WriteTimelineBreakdowns(os.Stdout, "where time goes, by tenant", micstream.TimelinesByTenant(timelines)); err != nil {
			fatal(err)
		}
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "micsched: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "micsched:", err)
	os.Exit(1)
}
