package main

// Table-driven validation of the flag matrix (see the miccluster
// counterpart): malformed flags exit 2 with a usage error naming the
// flag, legal runs succeed. Re-executes the test binary with
// RUN_MICSCHED_MAIN=1 so main() runs as installed.

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("RUN_MICSCHED_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RUN_MICSCHED_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("exec: %v", err)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

func TestCLIFlagMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary per case")
	}
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"scale zero", []string{"-scale=0"}, 2, "-scale must be positive"},
		{"partitions zero", []string{"-partitions=0"}, 2, "-partitions must be positive"},
		{"window zero", []string{"-window=0"}, 2, "-window must be positive"},
		{"bad policy", []string{"-policy=bogus"}, 2, "-policy:"},
		{"bad pattern", []string{"-pattern=bogus"}, 2, "-pattern: unknown load pattern"},
		{"bad arrival", []string{"-arrival=bogus"}, 2, "-arrival: unknown arrival process"},
		// -explain=-5 used to silently mean "disabled"; only -1 is the
		// documented off switch.
		{"explain below -1", []string{"-explain=-5"}, 2, "-explain: job index must be -1"},
		{"bare run", []string{"-pattern=balanced"}, 0, "Jain index"},
		{"explain", []string{"-pattern=balanced", "-explain=0"}, 0, "where time goes"},
		{"list", []string{"-list"}, 0, "policies:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, code := runCLI(t, tc.args...)
			if code != tc.code {
				t.Fatalf("micsched %v: exit %d, want %d\n%s", tc.args, code, tc.code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("micsched %v: output missing %q\n%s", tc.args, tc.want, out)
			}
		})
	}
}
