// Command mictune demonstrates the paper's §V-C granularity tuning on
// a synthetic tiled-offload workload: it searches the exhaustive
// (partitions × tiles) space and the pruned heuristic space, reporting
// both optima and the search-cost reduction.
//
// Usage:
//
//	mictune [-flops 4e10] [-bytes 2.6e8] [-maxp 56] [-maxt 128] [-topk 16]
//
// The workload is a bag of independent tasks with the given total
// compute and transfer volume, split evenly across tiles — the generic
// shape of the paper's overlappable applications. Alongside the
// measured searches it runs the model-guided search (DESIGN.md §8):
// the analytic model ranks every point and only the top k are
// simulated.
package main

import (
	"flag"
	"fmt"
	"os"

	"micstream"
	"micstream/internal/experiments"
)

func main() {
	var (
		flops = flag.Float64("flops", 4e10, "total kernel work (flops)")
		bytes = flag.Int("bytes", 256<<20, "total transfer volume (bytes, split H2D+D2H)")
		maxP  = flag.Int("maxp", 56, "largest partition count to search")
		maxT  = flag.Int("maxt", 128, "largest tile count to search")
		topK  = flag.Int("topk", 16, "simulated candidates in the model-guided search")
	)
	flag.Parse()
	switch {
	case *flops <= 0:
		usageError("-flops must be positive, got %g", *flops)
	case *bytes <= 0:
		usageError("-bytes must be positive, got %d", *bytes)
	case *maxP < 1:
		usageError("-maxp must be at least 1, got %d", *maxP)
	case *maxT < 1:
		usageError("-maxt must be at least 1, got %d", *maxT)
	case *topK < 1:
		usageError("-topk must be at least 1, got %d", *topK)
	}

	// The workload builder is shared with the guided/modelval studies
	// so CLI and experiments measure the same synthetic shape.
	eval := experiments.SynthEval(*flops, int64(*bytes))

	fmt.Printf("workload: %.3g flops, %d MB transfers\n\n", *flops, *bytes>>20)

	exhaustive := micstream.ExhaustiveSpace(*maxP, *maxT)
	ex, err := micstream.Tune(exhaustive, eval)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exhaustive: %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		ex.Evaluations, ex.Partitions, ex.Tiles, ex.Seconds*1e3)

	pruned := micstream.HeuristicSpace(56, *maxT)
	pr, err := micstream.Tune(pruned, eval)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pruned:     %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		pr.Evaluations, pr.Partitions, pr.Tiles, pr.Seconds*1e3)

	cd, err := micstream.TuneCoordinateDescent(pruned, eval, 3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("descent:    %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		cd.Evaluations, cd.Partitions, cd.Tiles, cd.Seconds*1e3)

	m := micstream.NewModel(micstream.Xeon31SP(), micstream.DefaultLink())
	w := experiments.SynthWorkload(*flops, int64(*bytes))
	gd, err := micstream.TuneGuided(exhaustive, m.EvalFunc(w), eval, *topK)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("guided:     %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		gd.Evaluations, gd.Partitions, gd.Tiles, gd.Seconds*1e3)

	fmt.Printf("\nsearch-space reduction: %.1fx (pruned), %.1fx (descent), %.1fx (guided); optima within %.2f%% / %.2f%% / %.2f%%\n",
		float64(ex.Evaluations)/float64(pr.Evaluations),
		float64(ex.Evaluations)/float64(cd.Evaluations),
		float64(ex.Evaluations)/float64(gd.Evaluations),
		(pr.Seconds/ex.Seconds-1)*100,
		(cd.Seconds/ex.Seconds-1)*100,
		(gd.Seconds/ex.Seconds-1)*100)
	fmt.Printf("recommended partition candidates (divisors of 56): %v\n",
		micstream.CandidatePartitions(micstream.Xeon31SP()))
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mictune: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mictune:", err)
	os.Exit(1)
}
