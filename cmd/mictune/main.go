// Command mictune demonstrates the paper's §V-C granularity tuning on
// a synthetic tiled-offload workload: it searches the exhaustive
// (partitions × tiles) space and the pruned heuristic space, reporting
// both optima and the search-cost reduction.
//
// Usage:
//
//	mictune [-flops 4e10] [-bytes 2.6e8] [-maxp 56] [-maxt 128]
//
// The workload is a bag of independent tasks with the given total
// compute and transfer volume, split evenly across tiles — the generic
// shape of the paper's overlappable applications.
package main

import (
	"flag"
	"fmt"
	"os"

	"micstream"
)

func main() {
	var (
		flops = flag.Float64("flops", 4e10, "total kernel work (flops)")
		bytes = flag.Int("bytes", 256<<20, "total transfer volume (bytes, split H2D+D2H)")
		maxP  = flag.Int("maxp", 56, "largest partition count to search")
		maxT  = flag.Int("maxt", 128, "largest tile count to search")
	)
	flag.Parse()

	eval := func(partitions, tiles int) (float64, error) {
		p, err := micstream.NewPlatform(micstream.WithPartitions(partitions))
		if err != nil {
			return 0, err
		}
		buf := micstream.AllocVirtual(p, "data", *bytes/2, 1)
		per := buf.Len() / tiles
		if per == 0 {
			per = 1
		}
		tasks := make([]*micstream.Task, 0, tiles)
		for i := 0; i < tiles; i++ {
			off := (i * per) % buf.Len()
			n := per
			if off+n > buf.Len() {
				n = buf.Len() - off
			}
			tasks = append(tasks, &micstream.Task{
				ID:         i,
				H2D:        []micstream.TransferSpec{micstream.Xfer(buf, off, n)},
				Cost:       micstream.KernelCost{Name: "work", Flops: *flops / float64(tiles)},
				D2H:        []micstream.TransferSpec{micstream.Xfer(buf, off, n)},
				StreamHint: -1,
			})
		}
		res, err := micstream.RunTasks(p, tasks, 0)
		if err != nil {
			return 0, err
		}
		return res.Wall.Seconds(), nil
	}

	fmt.Printf("workload: %.3g flops, %d MB transfers\n\n", *flops, *bytes>>20)

	exhaustive := micstream.ExhaustiveSpace(*maxP, *maxT)
	ex, err := micstream.Tune(exhaustive, eval)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exhaustive: %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		ex.Evaluations, ex.Partitions, ex.Tiles, ex.Seconds*1e3)

	pruned := micstream.HeuristicSpace(56, *maxT)
	pr, err := micstream.Tune(pruned, eval)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pruned:     %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		pr.Evaluations, pr.Partitions, pr.Tiles, pr.Seconds*1e3)

	cd, err := micstream.TuneCoordinateDescent(pruned, eval, 3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("descent:    %5d points -> best P=%-3d T=%-4d %.3f ms\n",
		cd.Evaluations, cd.Partitions, cd.Tiles, cd.Seconds*1e3)

	fmt.Printf("\nsearch-space reduction: %.1fx (pruned), %.1fx (descent); optima within %.2f%% / %.2f%%\n",
		float64(ex.Evaluations)/float64(pr.Evaluations),
		float64(ex.Evaluations)/float64(cd.Evaluations),
		(pr.Seconds/ex.Seconds-1)*100,
		(cd.Seconds/ex.Seconds-1)*100)
	fmt.Printf("recommended partition candidates (divisors of 56): %v\n",
		micstream.CandidatePartitions(micstream.Xeon31SP()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mictune:", err)
	os.Exit(1)
}
