// Command micmodel validates the analytic performance model against
// the discrete-event simulation: for each application of the suite it
// prints the predicted and simulated wall times across the (P, T)
// validation plane, the relative error of every point, and the model's
// own best-configuration pick — the predict-instead-of-measure layer
// of DESIGN.md §8, inspected point by point.
//
// Usage:
//
//	micmodel -list                 # show the modeled applications
//	micmodel -app mm               # predicted-vs-simulated curve for one app
//	micmodel -app all              # every app, with per-app error summaries
//	micmodel -app nn -fit          # calibrate against 5 probe runs first
//	micmodel -validate             # per-app error summary (the modelval experiment)
//	micmodel -guided               # search-cost study (the guided experiment)
//
// The T column carries each application's own tile meaning: task count
// for the stripe/chunk apps, tile-grid edge for MM and CF.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"micstream"
	"micstream/internal/experiments"
)

func main() {
	var (
		app      = flag.String("app", "all", "application to sweep (or \"all\")")
		list     = flag.Bool("list", false, "list modeled applications")
		fit      = flag.Bool("fit", false, "calibrate the model with probe runs before predicting")
		probes   = flag.Int("probes", 5, "probe simulations used by -fit")
		validate = flag.Bool("validate", false, "print the per-app error summary (modelval)")
		guided   = flag.Bool("guided", false, "print the search-cost study (guided)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	render := micstream.RunExperiment
	if *csv {
		render = micstream.RunExperimentCSV
	}
	switch {
	case *validate:
		if err := render("modelval", os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *guided:
		if err := render("guided", os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	apps, err := experiments.ModelApps()
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, a := range apps {
			fmt.Println(a.Name)
		}
		return
	}

	ran := false
	for _, a := range apps {
		if *app != "all" && a.Name != *app {
			continue
		}
		ran = true
		if err := sweep(a, *fit, *probes, *csv); err != nil {
			fatal(err)
		}
	}
	if !ran {
		names := make([]string, len(apps))
		for i, a := range apps {
			names[i] = a.Name
		}
		fatal(fmt.Errorf("unknown app %q (have %s)", *app, strings.Join(names, ", ")))
	}
}

// sweep prints one application's predicted-vs-simulated plane.
func sweep(app experiments.ModelApp, fit bool, probes int, csv bool) error {
	m := micstream.NewModel(micstream.Xeon31SP(), micstream.DefaultLink())
	title := "predicted vs simulated wall time"
	if fit {
		space := micstream.SearchSpace{
			Partitions: app.Partitions,
			TilesFor:   app.TilesFor,
		}
		if _, err := m.Fit(app.Workload, space, app.Eval, probes); err != nil {
			return err
		}
		ts, cs := m.TransferScale, m.ComputeScale
		title = fmt.Sprintf("calibrated (TransferScale=%.2f ComputeScale=%.2f), %d probes", ts, cs, probes)
	}

	t := &experiments.Table{
		ID:      "micmodel/" + app.Name,
		Title:   title,
		Columns: []string{"P", "T", "predicted[ms]", "simulated[ms]", "err[%]", "overlap[%]"},
	}
	var sum, worst float64
	points := 0
	for _, p := range app.Partitions {
		for _, tiles := range app.TilesFor(p) {
			pred, err := m.Predict(app.Workload, p, tiles)
			if err != nil {
				return err
			}
			meas, err := app.Eval(p, tiles)
			if err != nil {
				return err
			}
			e := math.Abs(pred.Seconds()-meas) / meas
			sum += e
			if e > worst {
				worst = e
			}
			points++
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%d", tiles),
				fmt.Sprintf("%.3f", pred.Seconds()*1e3),
				fmt.Sprintf("%.3f", meas*1e3),
				fmt.Sprintf("%.1f", e*100),
				fmt.Sprintf("%.0f", pred.Overlap*100),
			})
		}
	}
	space := micstream.SearchSpace{Partitions: app.Partitions, TilesFor: app.TilesFor}
	best, err := m.BestConfig(app.Workload, space)
	if err != nil {
		return err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean err %.1f%%, max err %.1f%% over %d points", sum/float64(points)*100, worst*100, points),
		fmt.Sprintf("model's pick: P=%d T=%d (predicted %.3fms)", best.Partitions, best.Tiles, best.Pred.Seconds()*1e3))
	if csv {
		return t.FprintCSV(os.Stdout)
	}
	return t.Fprint(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "micmodel:", err)
	os.Exit(1)
}
