package main

// Table-driven validation of the flag matrix (see the miccluster
// counterpart): malformed flags and contradictory combos exit 2 with
// a usage error naming the flag, legal ingest runs succeed — including
// the -verify replay check and the -rate-only harness mode bench.sh
// scrapes. Re-executes the test binary with RUN_MICSERVE_MAIN=1 so
// main() runs as installed.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("RUN_MICSERVE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RUN_MICSERVE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("exec: %v", err)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

func TestCLIFlagMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary per case")
	}
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"jobs zero", []string{"-jobs=0"}, 2, "-jobs must be positive"},
		{"submitters zero", []string{"-submitters=0"}, 2, "-submitters must be positive"},
		{"negative rate", []string{"-rate=-1"}, 2, "-rate must be non-negative"},
		{"queuecap zero", []string{"-queuecap=0"}, 2, "-queuecap must be positive"},
		{"negative batchcap", []string{"-batchcap=-1"}, 2, "-batchcap must be non-negative"},
		{"drain zero", []string{"-drain=0"}, 2, "-drain must be positive"},
		{"bad place", []string{"-place=bogus"}, 2, "-place:"},
		{"bad cache", []string{"-cache=bogus"}, 2, "-cache: unknown cache mode"},
		{"cachecap without lru", []string{"-cachecap=1048576"}, 2, "-cachecap needs -cache=lru"},
		{"rate-only with serve", []string{"-rate-only", "-serve=:0"}, 2, "-rate-only is the harness mode"},
		{"rate-only with slo", []string{"-rate-only", "-slo=spec.json"}, 2, "-rate-only is the harness mode; drop -slo"},
		{"slo-json without slo", []string{"-slo-json=x.json"}, 2, "-slo-json needs -slo"},
		{"slo missing file", []string{"-slo=/nonexistent/spec.json"}, 2, "-slo:"},
		{"ingest run", []string{"-jobs=64", "-submitters=4"}, 0, "jobs/sec sustained"},
		{"verify replay", []string{"-jobs=64", "-submitters=4", "-verify"}, 0, "replay     bit-identical"},
		{"lru with cap", []string{"-jobs=64", "-cache=lru", "-cachecap=1048576"}, 0, "jobs/sec sustained"},
		{"throttled", []string{"-jobs=32", "-submitters=4", "-rate=100000"}, 0, "jobs/sec sustained"},
		{"list", []string{"-list"}, 0, "placements:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, code := runCLI(t, tc.args...)
			if code != tc.code {
				t.Fatalf("micserve %v: exit %d, want %d\n%s", tc.args, code, tc.code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("micserve %v: output missing %q\n%s", tc.args, tc.want, out)
			}
		})
	}
}

// TestSLOIngest pins the -slo ingest path: a malformed spec exits 2
// before any ingest, a legal one prints per-objective verdicts and
// writes the report.
func TestSLOIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"objectives": [{"bogus": 1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runCLI(t, "-slo="+bad)
	if code != 2 || !strings.Contains(out, "unknown field") {
		t.Fatalf("malformed spec: exit %d\n%s", code, out)
	}

	good := filepath.Join(dir, "good.json")
	spec := `{"objectives": [{"tenant": "t0", "name": "t0-lat", "kind": "latency", "target": 0.9, "threshold": "1s"}]}`
	if err := os.WriteFile(good, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	report := filepath.Join(dir, "SLO_serve.json")
	out, code = runCLI(t, "-jobs=64", "-submitters=4", "-slo="+good, "-slo-json="+report)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "slo        t0-lat (tenant t0)") {
		t.Fatalf("missing verdict line:\n%s", out)
	}
	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"schema": "micstream-slo-v1"`) {
		t.Fatalf("report missing schema header:\n%s", b)
	}
}

// TestRateOnlyPrintsBareNumber pins the harness contract bench.sh
// depends on: -rate-only prints exactly one parseable float line.
func TestRateOnlyPrintsBareNumber(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	out, code := runCLI(t, "-rate-only", "-jobs=64", "-submitters=4")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	fields := strings.Fields(out)
	if len(fields) != 1 || !strings.Contains(fields[0], ".") {
		t.Fatalf("-rate-only output is not one bare number: %q", out)
	}
}
