// Command micserve runs the cluster in service mode: a long-running
// server ingesting jobs concurrently from many submitter goroutines
// through the admission frontier, reporting the sustained ingest rate
// in jobs per second — the hot-loop number the perf trajectory tracks
// (scripts/bench.sh appends it to the throughput series).
//
// Usage:
//
//	micserve -jobs=2000 -submitters=8
//	micserve -jobs=5000 -submitters=16 -rate=50000 -place=affinity -cache=lru
//	micserve -jobs=1000 -verify            # prove the replay bit-identity
//	micserve -serve=:9090 -jobs=100000     # live /metrics, /flight, /stats
//	micserve -slo=objectives.json -serve=:9090   # adds live /slo and /health
//	micserve -rate-only -jobs=2000         # bare jobs/sec, for harnesses
//
// Wall-clock time decides only which epoch batch each job lands in;
// the schedule itself runs in virtual time, so -verify can replay the
// recorded admission sequence single-threaded and check the outcome
// stream is bit-identical to what the live server streamed
// (DESIGN.md §15).
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"slices"
	"sync"
	"time"

	"micstream"
)

func main() {
	var (
		devices    = flag.Int("devices", 2, "simulated MIC count")
		partitions = flag.Int("partitions", 4, "partitions per device")
		streams    = flag.Int("streams", 2, "streams per partition")
		place      = flag.String("place", "predicted", "placement policy")
		steal      = flag.Duration("steal", 0, "enable work stealing at this backlog threshold (virtual time); 0 disables")
		slice      = flag.Int("slice", 0, "enable preemptive slicing at this tasks-per-grant cap; 0 dispatches whole jobs")
		cache      = flag.String("cache", "off", "residency cache mode: off, lru")
		cachecap   = flag.Int64("cachecap", 0, "residency cache capacity per device in bytes (0 = unbounded; needs -cache=lru)")
		njobs      = flag.Int("jobs", 2000, "total jobs to ingest")
		submitters = flag.Int("submitters", 8, "concurrent submitter goroutines")
		rate       = flag.Float64("rate", 0, "target aggregate ingest rate in jobs/sec wall-clock; 0 = unthrottled")
		tenants    = flag.Int("tenants", 4, "tenant count")
		xfer       = flag.Int64("xfer", 4, "staged transfer size per off-origin job in MiB")
		queuecap   = flag.Int("queuecap", 256, "admission frontier capacity")
		batchcap   = flag.Int("batchcap", 0, "max jobs admitted per epoch; 0 = unbounded")
		drain      = flag.Duration("drain", 30*time.Second, "drain deadline (wall-clock)")
		serveAddr  = flag.String("serve", "", "serve live /metrics, /flight and /stats on this address while ingesting")
		sloPath    = flag.String("slo", "", "evaluate SLO objectives from this JSON spec file; adds live /slo and /health to -serve")
		sloOut     = flag.String("slo-json", "", "write the final SLO verdict as SLO JSON to this file (needs -slo)")
		verify     = flag.Bool("verify", false, "after draining, replay the recorded admission sequence single-threaded and check bit-identity")
		rateOnly   = flag.Bool("rate-only", false, "print only the sustained jobs/sec figure")
		list       = flag.Bool("list", false, "list placements and cache modes")
	)
	flag.Parse()

	if *list {
		fmt.Println("placements:", micstream.PlacementNames())
		fmt.Println("caches:", micstream.CacheModeNames())
		return
	}
	switch {
	case *devices < 1:
		usageError("-devices must be positive, got %d", *devices)
	case *partitions < 1:
		usageError("-partitions must be positive, got %d", *partitions)
	case *streams < 1:
		usageError("-streams must be positive, got %d", *streams)
	case *njobs < 1:
		usageError("-jobs must be positive, got %d", *njobs)
	case *submitters < 1:
		usageError("-submitters must be positive, got %d", *submitters)
	case *rate < 0:
		usageError("-rate must be non-negative, got %g", *rate)
	case *tenants < 1:
		usageError("-tenants must be positive, got %d", *tenants)
	case *xfer < 1:
		usageError("-xfer must be positive, got %d", *xfer)
	case *queuecap < 1:
		usageError("-queuecap must be positive, got %d", *queuecap)
	case *batchcap < 0:
		usageError("-batchcap must be non-negative, got %d", *batchcap)
	case *steal < 0:
		usageError("-steal must be non-negative, got %v", *steal)
	case *slice < 0:
		usageError("-slice must be non-negative, got %d", *slice)
	case *drain <= 0:
		usageError("-drain must be positive, got %v", *drain)
	}
	if _, err := micstream.PlaceBy(*place); err != nil {
		usageError("-place: %v", err)
	}
	if !slices.Contains(micstream.CacheModeNames(), *cache) {
		usageError("-cache: unknown cache mode %q (have %v)", *cache, micstream.CacheModeNames())
	}
	// Contradictory combos are command-line mistakes, not settings to
	// silently ignore.
	cachecapSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "cachecap" {
			cachecapSet = true
		}
	})
	if cachecapSet && *cache != "lru" {
		usageError("-cachecap needs -cache=lru (cache mode %q ignores it)", *cache)
	}
	if *rateOnly && *serveAddr != "" {
		usageError("-rate-only is the harness mode; drop -serve")
	}
	if *rateOnly && *sloPath != "" {
		usageError("-rate-only is the harness mode; drop -slo")
	}
	if *sloOut != "" && *sloPath == "" {
		usageError("-slo-json needs -slo to declare the objectives")
	}
	// A malformed objective spec is a command-line mistake, refused up
	// front before any ingest starts.
	var sloSpec micstream.SLOSpec
	if *sloPath != "" {
		var err error
		if sloSpec, err = micstream.LoadSLOSpec(*sloPath); err != nil {
			usageError("-slo: %v", err)
		}
	}

	build := func(tel *micstream.Telemetry) (*micstream.Cluster, error) {
		pol, err := micstream.PlaceBy(*place)
		if err != nil {
			return nil, err
		}
		opts := []micstream.ClusterOption{
			micstream.WithClusterDevices(*devices),
			micstream.WithClusterPartitions(*partitions),
			micstream.WithClusterStreams(*streams),
			micstream.WithPlacement(pol),
		}
		if *steal > 0 {
			opts = append(opts, micstream.WithClusterStealing(*steal))
		}
		if *slice > 0 {
			opts = append(opts, micstream.WithClusterSlicing(*slice))
		}
		if *cache == "lru" {
			opts = append(opts, micstream.WithResidency(*cachecap))
		}
		if tel != nil {
			opts = append(opts, micstream.WithClusterTelemetry(tel))
		}
		return micstream.NewCluster(opts...)
	}

	serveOpts := []micstream.ServeOption{
		micstream.WithServeQueueCap(*queuecap),
		micstream.WithServeBatchCap(*batchcap),
	}
	var tel *micstream.Telemetry
	if *serveAddr != "" || *sloPath != "" {
		tel = micstream.NewTelemetry()
	}
	if *serveAddr != "" {
		serveOpts = append(serveOpts,
			micstream.WithServeExporter(micstream.NewOpenMetricsExporter()),
			micstream.WithServeFlight(micstream.NewFlightRecorder(256)))
	}
	var sloEval *micstream.SLOEvaluator
	if *sloPath != "" {
		var err error
		if sloEval, err = micstream.NewSLOEvaluator(sloSpec); err != nil {
			fatal(err)
		}
		serveOpts = append(serveOpts,
			micstream.WithServeSLO(sloEval),
			micstream.WithServeSLOMeta(micstream.SLOMeta{Run: "serve-" + *place, Policy: *place}))
	}
	c, err := build(tel)
	if err != nil {
		fatal(err)
	}
	srv, err := micstream.Serve(c, serveOpts...)
	if err != nil {
		fatal(err)
	}
	if *serveAddr != "" {
		go func() {
			if err := srv.ListenAndServe(*serveAddr); err != nil {
				fmt.Fprintf(os.Stderr, "micserve: http: %v\n", err)
			}
		}()
	}

	var sub *micstream.OutcomeSubscription
	if *verify {
		sub = srv.Subscribe()
	}

	// The ingest driver: -submitters goroutines split -jobs between
	// them, each pacing itself so the aggregate offered rate is
	// -rate (unthrottled when 0). Job content is a pure function of
	// the job id, so the replay check depends only on the recorded
	// batch partition — the one thing wall clock is allowed to decide.
	perSubmitter := time.Duration(0)
	if *rate > 0 {
		perSubmitter = time.Duration(float64(*submitters) / *rate * float64(time.Second))
	}
	var wg sync.WaitGroup
	errc := make(chan error, *submitters)
	wallStart := time.Now()
	for g := 0; g < *submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for id := g; id < *njobs; id += *submitters {
				j := ingestJob(id, *tenants, *devices, *xfer)
				if sloEval != nil {
					// Deadline-kind objectives stamp their budget onto
					// the job, so scheduler miss accounting and the
					// evaluator judge the same number.
					jobs := []micstream.ClusterJob{j}
					micstream.StampSLODeadlines(jobs, sloSpec)
					j = jobs[0]
				}
				if _, err := srv.Submit(j); err != nil {
					errc <- fmt.Errorf("job %d: %w", id, err)
					return
				}
				if perSubmitter > 0 {
					time.Sleep(perSubmitter)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		fatal(err)
	}
	if err := srv.Drain(*drain); err != nil {
		fatal(err)
	}
	wall := time.Since(wallStart)
	st := srv.Stats()
	r, err := srv.Result()
	if err != nil {
		fatal(err)
	}
	sustained := float64(st.Completed) / wall.Seconds()

	if *rateOnly {
		fmt.Printf("%.1f\n", sustained)
	} else {
		fmt.Printf("ingest     %d jobs, %d submitters, %d epochs\n", st.Completed, *submitters, st.Epochs)
		fmt.Printf("wall       %v (%.1f jobs/sec sustained)\n", wall.Round(time.Millisecond), sustained)
		fmt.Printf("virtual    %v makespan, %.2f GFlop/s\n", r.Makespan, r.GFlops)
		fmt.Printf("placement  %s; %d steals, %d preempts, %d staged jobs (%d MiB)\n",
			r.Placement, r.Steals, r.Preempts, r.StagedJobs, r.StagedBytes>>20)
		if r.Failed > 0 {
			fmt.Printf("failed     %d jobs\n", r.Failed)
		}
		for _, st := range sloStates(sloEval) {
			verdict := "compliant"
			if st.Exhausted {
				verdict = fmt.Sprintf("budget exhausted at %v", st.ExhaustedAt)
			} else if st.Alerting {
				verdict = "burn-rate alert firing"
			}
			fmt.Printf("slo        %s (tenant %s): budget %.2f, %d/%d bad, burn %.1f fast / %.1f slow — %s\n",
				st.Objective.Name, st.Objective.TenantLabel(), st.BudgetRemaining,
				st.Bad, st.Samples, st.BurnFast, st.BurnSlow, verdict)
		}
	}
	if sloEval != nil && *sloOut != "" {
		f, err := os.Create(*sloOut)
		if err != nil {
			fatal(err)
		}
		meta := micstream.SLOMeta{Run: "serve-" + *place, Policy: *place}
		if err := sloEval.WriteJSON(f, meta); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*rateOnly {
			fmt.Printf("slo report → %s\n", *sloOut)
		}
	}

	if *verify {
		live := collect(sub)
		replayC, err := build(nil)
		if err != nil {
			fatal(err)
		}
		var replayed []micstream.ClusterOutcome
		if _, err := micstream.ReplayBatches(replayC, srv.Batches(), func(o micstream.ClusterOutcome) {
			replayed = append(replayed, o)
		}); err != nil {
			fatal(fmt.Errorf("replay: %w", err))
		}
		if !reflect.DeepEqual(live, replayed) {
			fatal(fmt.Errorf("replay diverged from the live outcome stream (%d vs %d outcomes)", len(replayed), len(live)))
		}
		if !*rateOnly {
			fmt.Printf("replay     bit-identical (%d outcomes, %d batches)\n", len(live), len(srv.Batches()))
		}
	}
}

// sloStates returns the evaluator's verdicts, or nothing when SLOs
// are off.
func sloStates(ev *micstream.SLOEvaluator) []micstream.SLOState {
	if ev == nil {
		return nil
	}
	return ev.States()
}

// ingestJob builds job id's spec: tenant and cost derive from the id,
// every fourth job is staged off-origin so the placement and
// residency paths stay hot.
func ingestJob(id, tenants, devices int, xferMiB int64) micstream.ClusterJob {
	j := micstream.ClusterJob{
		ID:     id,
		Tenant: fmt.Sprintf("t%d", id%tenants),
		Tasks: []*micstream.Task{{
			ID:         0,
			Cost:       micstream.KernelCost{Name: "ingest", Flops: 2e8 + 1e8*float64(id%5)},
			StreamHint: -1,
		}},
		Origin: -1,
	}
	if id%4 == 0 {
		j.Origin = id % devices
		j.StagingBytes = xferMiB << 20
	}
	return j
}

func collect(sub *micstream.OutcomeSubscription) []micstream.ClusterOutcome {
	var out []micstream.ClusterOutcome
	for {
		o, ok := sub.Next()
		if !ok {
			return out
		}
		out = append(out, o)
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "micserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "micserve:", err)
	os.Exit(1)
}
