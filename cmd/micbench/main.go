// Command micbench regenerates the figures of "Evaluating the
// Performance Impact of Multiple Streams on the MIC-based
// Heterogeneous Platform" (Li et al., 2016) on the simulated platform.
//
// Usage:
//
//	micbench -list                 # show available experiments
//	micbench -fig 9a               # regenerate one figure
//	micbench -all                  # regenerate every figure
//
// Figure ids accept both "9a" and "fig9a" spellings. Output is a
// plain-text table per figure, with the same rows/series the paper
// plots and notes documenting any protocol deviation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"micstream"
)

func main() {
	var (
		fig  = flag.String("fig", "", "figure to regenerate (e.g. 5, 9a, fig10f, heuristics)")
		all  = flag.Bool("all", false, "regenerate every figure")
		list = flag.Bool("list", false, "list available experiments")
		csv  = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	render := micstream.RunExperiment
	if *csv {
		render = micstream.RunExperimentCSV
	}
	switch {
	case *list:
		for _, id := range micstream.ExperimentIDs() {
			fmt.Println(id)
		}
	case *all:
		for i, id := range micstream.ExperimentIDs() {
			if i > 0 {
				fmt.Println()
			}
			if err := render(id, os.Stdout); err != nil {
				fatal(err)
			}
		}
	case *fig != "":
		id := strings.ToLower(*fig)
		err := render(id, os.Stdout)
		if _, unknown := err.(*micstream.UnknownExperimentError); unknown {
			// Accept the short spelling: "9a" for "fig9a".
			err = render("fig"+id, os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "micbench:", err)
	os.Exit(1)
}
