// Command micbench regenerates the figures of "Evaluating the
// Performance Impact of Multiple Streams on the MIC-based
// Heterogeneous Platform" (Li et al., 2016) on the simulated platform.
//
// Usage:
//
//	micbench -list                 # show available experiments
//	micbench -fig 9a               # regenerate one figure
//	micbench -all                  # regenerate every figure
//
// Figure ids accept both "9a" and "fig9a" spellings. Output is a
// plain-text table per figure, with the same rows/series the paper
// plots and notes documenting any protocol deviation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"micstream"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate (e.g. 5, 9a, fig10f, heuristics)")
		all        = flag.Bool("all", false, "regenerate every figure")
		list       = flag.Bool("list", false, "list available experiments")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	// Profile paths fail up front with a usage error: an unwritable
	// file is a command-line mistake, and discovering it after the
	// experiments ran would discard the work.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			usageError("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			usageError("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	var memOut *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			usageError("-memprofile: %v", err)
		}
		memOut = f
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(memOut); err != nil {
				fatal(err)
			}
			if err := memOut.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	render := micstream.RunExperiment
	if *csv {
		render = micstream.RunExperimentCSV
	}
	switch {
	case *list:
		for _, id := range micstream.ExperimentIDs() {
			fmt.Println(id)
		}
	case *all:
		for i, id := range micstream.ExperimentIDs() {
			if i > 0 {
				fmt.Println()
			}
			if err := render(id, os.Stdout); err != nil {
				fatal(err)
			}
		}
	case *fig != "":
		id := strings.ToLower(*fig)
		err := render(id, os.Stdout)
		if _, unknown := err.(*micstream.UnknownExperimentError); unknown {
			// Accept the short spelling: "9a" for "fig9a".
			err = render("fig"+id, os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "micbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "micbench:", err)
	os.Exit(1)
}
