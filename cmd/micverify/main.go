// Command micverify runs every application of the suite in functional
// mode at a small scale and checks each result against its host
// reference — the release self-check that proves the platform's
// scheduling semantics preserve program meaning under tiling, stream
// parallelism, cross-stream dependencies and multi-device staging.
//
// Usage:
//
//	micverify [-seed 1]
//
// Exit status 0 means every application verified.
package main

import (
	"flag"
	"fmt"
	"os"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hbench"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/mm"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
)

func main() {
	seed := flag.Uint64("seed", 1, "input generator seed")
	flag.Parse()

	checks := []struct {
		name string
		run  func(seed uint64) error
	}{
		{"hbench (B[i]=A[i]+α, 4 streams × 8 tiles)", func(s uint64) error {
			app, err := hbench.New(hbench.Params{Elements: 1 << 14, Iterations: 3, Alpha: 1.5, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.RunStreamed(4, 8); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"mm (tiled GEMM, 4 streams, 4×4 grid)", func(s uint64) error {
			app, err := mm.New(mm.Params{N: 64, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(4, 4); err != nil {
				return err
			}
			return app.VerifyGrid(4)
		}},
		{"cf (Cholesky DAG, 4 streams, 4×4 tiles)", func(s uint64) error {
			app, err := cf.New(cf.Params{N: 96, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(1, 4, 4); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"cf multi-MIC (2 devices, cross-device staging)", func(s uint64) error {
			app, err := cf.New(cf.Params{N: 96, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(2, 2, 4); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"kmeans (iterative, 4 streams × 8 tasks)", func(s uint64) error {
			app, err := kmeans.New(kmeans.Params{N: 600, Features: 3, K: 4, Iterations: 5, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(4, 8); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"hotspot (barrier stencil, 4 streams × 6 stripes)", func(s uint64) error {
			app, err := hotspot.New(hotspot.Params{Dim: 24, Iterations: 4, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(4, 6); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"hotspot pipelined (fine-grained halo deps)", func(s uint64) error {
			app, err := hotspot.New(hotspot.Params{Dim: 24, Iterations: 4, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.RunPipelined(4, 6); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"nn (k-nearest, 4 streams × 8 chunks)", func(s uint64) error {
			app, err := nn.New(nn.Params{N: 4000, K: 10, TargetLat: 40, TargetLon: 120, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(4, 8); err != nil {
				return err
			}
			return app.Verify()
		}},
		{"srad (3-phase diffusion, 4 streams × 8 stripes)", func(s uint64) error {
			app, err := srad.New(srad.Params{Dim: 32, Iterations: 4, Lambda: 0.5, Functional: true, Seed: s})
			if err != nil {
				return err
			}
			if _, err := app.Run(4, 8); err != nil {
				return err
			}
			return app.Verify()
		}},
	}

	failed := 0
	for _, c := range checks {
		if err := c.run(*seed); err != nil {
			fmt.Printf("FAIL  %-50s %v\n", c.name, err)
			failed++
			continue
		}
		fmt.Printf("ok    %s\n", c.name)
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d functional checks verified against host references\n", len(checks))
}
