// Command miccluster runs the model-driven multi-MIC cluster scheduler
// over a synthetic workload and prints per-device and per-tenant
// accounting: job counts, utilization, staging traffic, throughput and
// latency percentiles.
//
// Usage:
//
//	miccluster -place=predicted -devices=2 -spread=8 -affinity=0.5
//	miccluster -compare -arrival=correlated -seed=7
//	miccluster -steal=1ns -affinity=1 -origins=0 -xfer=8388608 -depth=16
//	miccluster -slice=1 -steal=1ns -policy=sjf -spread=16
//	miccluster -cache=lru -cachecap=67108864 -datasets=4 -place=affinity
//	miccluster -scaling -devices=4
//	miccluster -explain=7 -slice=1 -steal=1ns
//	miccluster -serve=:9100 -metrics-json=metrics.json -drift=DRIFT_run.json
//	miccluster -flight=flight.txt -flight-p95=5ms
//	miccluster -slo=objectives.json -slo-json=SLO_run.json
//	miccluster -list
//
// Placement policies: least-loaded (fewest committed jobs),
// round-robin (rotate devices), predicted (earliest model-predicted
// completion including the cross-device staging term — the policy the
// placement experiment shows winning on imbalanced mixes), affinity
// (predicted's scores, near-ties broken toward the device already
// holding the job's tiles — needs -cache=lru to differ). -steal
// enables drain-instant work stealing: an idle device re-binds
// committed jobs from a device whose backlog exceeds the threshold
// when the predicted completion (staging re-charged) improves. -slice
// enables preemptive job slicing: a stream grant dispatches at most
// that many tasks and the remainder re-enters the device queue at the
// slice boundary, where a size-aware -policy (sjf, adaptive) lets
// light jobs overtake it and -steal extends to dispatched jobs — an
// idle device migrates the remainder mid-job, re-pricing staging for
// only the tasks it still needs.
// -cache=lru enables the device-resident staging cache: -datasets
// makes device-resident jobs cycle through shared inputs, repeats
// stage only their cold misses, and -cachecap bounds the per-device
// cache (LRU-evicted at drain instants; -writefrac makes some jobs
// overwrite their dataset, invalidating cached copies). -compare runs
// every placement on the same workload side by side; -scaling prints
// a Fig. 11-style table of 1..devices GFLOPS through the scheduler.
//
// The explanation flags replay the run's telemetry: -explain=<job>
// prints that job's causal timeline (place-wait, commit-wait, exec,
// slice-wait, migration — the phases sum exactly to its latency) plus
// per-tenant and per-device where-time-goes tables; -drift writes the
// model-drift audit (predicted vs realised completion and slice
// estimates) as DRIFT JSON; -metrics-json dumps the drain-instant
// snapshot series machine-readably; -flight writes a flight-recorder
// report (the last events before each job failure or, with
// -flight-p95, each tenant's first p95 breach); -serve exposes the
// final metrics at /metrics in OpenMetrics text format after the run.
// -slo evaluates a JSON objective spec (per-tenant latency targets,
// deadline miss budgets, throughput floors — DESIGN.md §16) over the
// run's telemetry: error budgets and multi-window burn rates update at
// every drain instant, violations are attributed to their dominant
// causal phase, budget exhaustion triggers the -flight recorder, and
// -slo-json writes the byte-deterministic SLO report.
// Observers never perturb the schedule: a run with every explanation
// flag on is bit-identical to the bare run. Every run is a pure
// function of its flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"micstream"
)

func main() {
	var (
		devices    = flag.Int("devices", 2, "coprocessor count")
		partitions = flag.Int("partitions", 2, "partitions per device")
		streams    = flag.Int("streams", 2, "streams per partition")
		place      = flag.String("place", "predicted", "placement policy: least-loaded, round-robin, predicted, affinity")
		policy     = flag.String("policy", "fifo", "per-device stream policy: fifo, rr, sjf, adaptive")
		depth      = flag.Int("depth", 8, "per-device committed-queue depth")
		steal      = flag.Duration("steal", 0, "work-stealing backlog threshold (e.g. 1ms; 1ns steals on any backlog); 0 disables")
		slice      = flag.Int("slice", 0, "max tasks one stream grant dispatches (preemptive job slicing); 0 dispatches whole jobs")
		staging    = flag.Float64("staging", 0, "staging factor override (0 = default 2x)")
		cache      = flag.String("cache", "off", "residency cache mode: off, lru (device-resident staging cache; off-origin jobs stage cold misses only)")
		cachecap   = flag.Int64("cachecap", 64<<20, "per-device residency cache capacity in bytes (0 = unbounded; needs -cache=lru)")
		datasets   = flag.Int("datasets", 0, "shared datasets device-resident jobs cycle through (0 = private inputs, nothing for the cache to reuse)")
		writefrac  = flag.Float64("writefrac", 0, "fraction of dataset jobs that overwrite their region, invalidating cached copies (needs -datasets)")
		njobs      = flag.Int("njobs", 48, "job count")
		scale      = flag.Int("scale", 1, "multiplier on the job count")
		spread     = flag.Float64("spread", 4, "geometric job-size spread (1 = identical jobs)")
		affinity   = flag.Float64("affinity", 0.25, "fraction of jobs with device-resident inputs")
		xfer       = flag.Int64("xfer", 1<<20, "per-job transfer (and staging) volume in bytes")
		origins    = flag.String("origins", "", "comma-separated devices affine jobs cycle through (default: all devices; e.g. -origins=0 pins all inputs to device 0)")
		arrival    = flag.String("arrival", "poisson", "arrival process: poisson, bursty, heavytail, diurnal, correlated")
		seed       = flag.Uint64("seed", 1, "scenario seed")
		window     = flag.Duration("window", 20*time.Millisecond, "arrival window (virtual time)")
		tenants    = flag.Int("tenants", 4, "tenant count")
		jobs       = flag.Bool("jobs", false, "also print every job's lifecycle")
		compare    = flag.Bool("compare", false, "run every placement policy on the same workload")
		scaling    = flag.Bool("scaling", false, "print a Fig. 11-style 1..devices scaling table")
		list       = flag.Bool("list", false, "list placement policies, stream policies, and arrival processes")
		traceOut   = flag.String("trace", "", "write the run as Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
		metrics    = flag.Bool("metrics", false, "print the drain-instant metrics snapshots")
		explain    = flag.Int("explain", -1, "print the causal timeline for this job index plus where-time-goes tables (-1 disables)")
		serve      = flag.String("serve", "", "after the run, serve the final metrics at this address in OpenMetrics text format (e.g. :9100)")
		metricsOut = flag.String("metrics-json", "", "write the drain-instant metrics snapshots as JSON to this file")
		driftOut   = flag.String("drift", "", "write the model-drift audit (predicted vs realised) as DRIFT JSON to this file")
		flightOut  = flag.String("flight", "", "write a flight-recorder report (events preceding failures / p95 breaches) to this file")
		flightCap  = flag.Int("flight-cap", micstream.DefaultFlightCap, "flight-recorder ring capacity in events")
		flightP95  = flag.Duration("flight-p95", 0, "flight-recorder trigger: dump on a tenant's first p95 over this (virtual time); 0 disables")
		sloPath    = flag.String("slo", "", "evaluate SLO objectives from this JSON spec file over the run's telemetry")
		sloOut     = flag.String("slo-json", "", "write the SLO verdict as SLO JSON to this file (needs -slo)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("placements:", micstream.PlacementNames())
		fmt.Println("policies:  ", micstream.PolicyNames())
		fmt.Println("arrivals:  ", micstream.ArrivalNames())
		fmt.Println("caches:    ", micstream.CacheModeNames())
		return
	}
	switch {
	case *devices < 1:
		usageError("-devices must be positive, got %d", *devices)
	case *partitions < 1:
		usageError("-partitions must be positive, got %d", *partitions)
	case *streams < 1:
		usageError("-streams must be positive, got %d", *streams)
	case *scale < 1:
		usageError("-scale must be positive, got %d", *scale)
	case *njobs < 1:
		usageError("-njobs must be positive, got %d", *njobs)
	case *depth < 1:
		usageError("-depth must be positive, got %d", *depth)
	case *steal < 0:
		usageError("-steal must be non-negative, got %v", *steal)
	case *slice < 0:
		usageError("-slice must be non-negative, got %d", *slice)
	case *staging < 0:
		usageError("-staging must be non-negative, got %g", *staging)
	case *cachecap < 0:
		usageError("-cachecap must be non-negative, got %d", *cachecap)
	case *datasets < 0:
		usageError("-datasets must be non-negative, got %d", *datasets)
	case *writefrac < 0 || *writefrac > 1:
		usageError("-writefrac must be in [0,1], got %g", *writefrac)
	case *spread < 1:
		usageError("-spread must be at least 1, got %g", *spread)
	case *affinity < 0 || *affinity > 1:
		usageError("-affinity must be in [0,1], got %g", *affinity)
	case *xfer < 1:
		usageError("-xfer must be positive, got %d", *xfer)
	case *tenants < 1:
		usageError("-tenants must be positive, got %d", *tenants)
	case *window <= 0:
		usageError("-window must be positive, got %v", *window)
	}
	// Name-valued flags fail up front with a usage error instead of
	// deep inside a run: an unknown policy or arrival process is a
	// command-line mistake, not a runtime failure.
	if _, err := micstream.PlaceBy(*place); err != nil && !*compare {
		usageError("-place: %v", err)
	}
	if _, err := micstream.PolicyByName(*policy); err != nil {
		usageError("-policy: %v", err)
	}
	if !slices.Contains(micstream.ArrivalNames(), *arrival) {
		usageError("-arrival: unknown arrival process %q (have %v)", *arrival, micstream.ArrivalNames())
	}
	if !slices.Contains(micstream.CacheModeNames(), *cache) {
		usageError("-cache: unknown cache mode %q (have %v)", *cache, micstream.CacheModeNames())
	}
	origin, err := parseOrigins(*origins, *devices)
	if err != nil {
		usageError("-origins: %v", err)
	}
	// Contradictory combos are command-line mistakes, not settings to
	// silently ignore: a flag whose effect depends on a mode demands
	// that mode, and a per-run report clashes with the multi-run views.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["cachecap"] && *cache != "lru" {
		usageError("-cachecap needs -cache=lru (cache mode %q ignores it)", *cache)
	}
	if *writefrac > 0 && *datasets < 1 {
		usageError("-writefrac needs -datasets: without shared datasets no job has a region to overwrite")
	}
	if explicit["flight-cap"] && *flightOut == "" {
		usageError("-flight-cap sizes the flight-recorder ring; it needs -flight")
	}
	if *jobs && (*compare || *scaling) {
		usageError("-jobs prints one run's lifecycles; drop -compare/-scaling")
	}
	if *metrics && *scaling {
		usageError("-metrics snapshots one scheduler run; drop -scaling")
	}
	if *traceOut != "" && (*compare || *scaling) {
		usageError("-trace records one run; drop -compare/-scaling")
	}
	if *sloOut != "" && *sloPath == "" {
		usageError("-slo-json needs -slo to declare the objectives")
	}
	if *sloPath != "" && (*compare || *scaling) {
		usageError("-slo judges one run's objectives; drop -compare/-scaling")
	}
	// The spec file is parsed and validated up front: a malformed
	// objective is a command-line mistake, not a runtime failure.
	var sloSpec micstream.SLOSpec
	if *sloPath != "" {
		if sloSpec, err = micstream.LoadSLOSpec(*sloPath); err != nil {
			usageError("-slo: %v", err)
		}
	}
	explaining := *explain >= 0 || *serve != "" || *metricsOut != "" || *driftOut != "" || *flightOut != "" || *sloPath != ""
	if explaining && (*compare || *scaling) {
		usageError("-explain/-serve/-metrics-json/-drift/-flight describe one run; drop -compare/-scaling")
	}
	if *explain < -1 || *explain >= *njobs*(*scale) {
		usageError("-explain: job index %d out of range [0,%d)", *explain, *njobs*(*scale))
	}
	if *flightCap < 1 {
		usageError("-flight-cap must be positive, got %d", *flightCap)
	}
	if *flightP95 < 0 {
		usageError("-flight-p95 must be non-negative, got %v", *flightP95)
	}
	if *flightP95 > 0 && *flightOut == "" {
		usageError("-flight-p95 needs -flight to write the report somewhere")
	}
	// Output-path flags fail up front with a usage error: an unwritable
	// profile or trace path is a command-line mistake, and discovering
	// it after the run would discard the work.
	var traceFile *os.File
	if *traceOut != "" {
		if traceFile, err = os.Create(*traceOut); err != nil {
			usageError("-trace: %v", err)
		}
	}
	create := func(flagName, path string) *os.File {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			usageError("-%s: %v", flagName, err)
		}
		return f
	}
	metricsFile := create("metrics-json", *metricsOut)
	driftFile := create("drift", *driftOut)
	flightFile := create("flight", *flightOut)
	sloFile := create("slo-json", *sloOut)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			usageError("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			usageError("-cpuprofile: %v", err)
		}
	}
	var memOut *os.File
	if *memprofile != "" {
		if memOut, err = os.Create(*memprofile); err != nil {
			usageError("-memprofile: %v", err)
		}
	}
	finish := func() {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if memOut != nil {
			runtime.GC()
			if err := pprof.WriteHeapProfile(memOut); err != nil {
				fatal(err)
			}
			if err := memOut.Close(); err != nil {
				fatal(err)
			}
		}
	}

	if *scaling {
		runScaling(scalingFlags{
			maxDevices: *devices, partitions: *partitions, streams: *streams,
			policy: *policy, depth: *depth, steal: *steal, slice: *slice,
			staging: *staging, cache: *cache, cachecap: *cachecap,
			njobs: *njobs * *scale, seed: *seed, xfer: *xfer,
		})
		finish()
		return
	}

	places := []string{*place}
	if *compare {
		places = micstream.PlacementNames()
	}
	for i, name := range places {
		if i > 0 {
			fmt.Println()
		}
		// One recorder per run: with -compare each policy's snapshots
		// stay separate instead of accumulating into one timeline.
		var rec *micstream.Telemetry
		if traceFile != nil || *metrics || explaining {
			rec = micstream.NewTelemetry()
		}
		// Live observers ride the recorder's hooks; they are pure
		// consumers, so the schedule is bit-identical with them on.
		var exporter *micstream.OpenMetricsExporter
		var flight *micstream.FlightRecorder
		if *serve != "" {
			exporter = micstream.NewOpenMetricsExporter()
		}
		if flightFile != nil {
			flight = micstream.NewFlightRecorder(*flightCap)
			flight.SetP95Threshold(micstream.Duration((*flightP95).Nanoseconds()))
		}
		var sloEval *micstream.SLOEvaluator
		if *sloPath != "" {
			ev, err := micstream.NewSLOEvaluator(sloSpec)
			if err != nil {
				fatal(err)
			}
			sloEval = ev
			if flight != nil {
				// Budget exhaustion is an anomaly worth a capture: wire
				// it to the flight recorder, as the serve layer does.
				fl := flight
				sloEval.SetOnExhausted(func(o micstream.SLOObjective, at micstream.Time) {
					fl.Trigger(fmt.Sprintf("slo %q (tenant %q) error budget exhausted", o.Name, o.TenantLabel()), at)
				})
			}
		}
		if flight != nil || sloEval != nil {
			fl, ev := flight, sloEval
			rec.SetOnEvent(func(e micstream.TelemetryEvent) {
				if ev != nil {
					ev.OnEvent(e)
				}
				if fl != nil {
					fl.OnEvent(e)
				}
			})
		}
		if exporter != nil || flight != nil || sloEval != nil {
			exp, fl, ev := exporter, flight, sloEval
			rec.SetOnMetrics(func(s micstream.MetricsSnapshot) {
				if exp != nil {
					exp.Observe(s)
				}
				if ev != nil {
					ev.OnMetrics(s)
				}
				if fl != nil {
					fl.OnMetrics(s)
				}
			})
		}
		var specPtr *micstream.SLOSpec
		if sloEval != nil {
			specPtr = &sloSpec
		}
		r, c := runOnce(name, clusterFlags{
			devices: *devices, partitions: *partitions, streams: *streams,
			policy: *policy, depth: *depth, steal: *steal, slice: *slice,
			staging: *staging, cache: *cache, cachecap: *cachecap,
			njobs: *njobs * *scale, spread: *spread, affinity: *affinity,
			datasets: *datasets, writefrac: *writefrac,
			xfer: *xfer, origins: origin, arrival: *arrival, seed: *seed,
			windowNs: window.Nanoseconds(), tenants: *tenants,
		}, rec, specPtr)
		printResult(r, name, *arrival, *seed, *cache != "off", *jobs)
		if *metrics {
			printMetrics(c.Metrics())
		}
		if traceFile != nil {
			if err := c.Trace(traceFile); err != nil {
				fatal(err)
			}
			if err := traceFile.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("\ntrace: %d events, %d snapshots → %s\n", rec.Len(), len(c.Metrics()), *traceOut)
		}
		if *explain >= 0 {
			explainJob(rec, *explain)
		}
		if metricsFile != nil {
			writeAndClose(metricsFile, *metricsOut, "metrics", func(f *os.File) error {
				return micstream.WriteMetricsJSON(f, c.Metrics())
			})
		}
		if driftFile != nil {
			meta := micstream.DriftMeta{Run: fmt.Sprintf("%s-%s-%d", name, *arrival, *seed),
				Seed: int64(*seed), Placement: name, TransferScale: 1, ComputeScale: 1}
			if m := c.PricingModel(); m != nil {
				meta.TransferScale, meta.ComputeScale = m.Calibration()
			}
			writeAndClose(driftFile, *driftOut, "drift audit", func(f *os.File) error {
				return micstream.WriteDriftJSON(f, micstream.AuditDrift(rec.Events()), meta)
			})
		}
		if flightFile != nil {
			writeAndClose(flightFile, *flightOut, "flight report", func(f *os.File) error {
				return flight.WriteText(f)
			})
		}
		if sloEval != nil {
			printSLO(sloEval)
			if sloFile != nil {
				meta := micstream.SLOMeta{Run: fmt.Sprintf("%s-%s-%d", name, *arrival, *seed),
					Seed: int64(*seed), Policy: name}
				writeAndClose(sloFile, *sloOut, "slo report", func(f *os.File) error {
					return sloEval.WriteJSON(f, meta)
				})
			}
		}
		if exporter != nil {
			fmt.Printf("\nserving OpenMetrics at http://%s/metrics (interrupt to stop)\n", *serve)
			if err := exporter.ListenAndServe(*serve); err != nil {
				fatal(err)
			}
		}
	}
	finish()
}

// writeAndClose renders one explanation artifact and reports where it
// went; a failed write is fatal, not a usage error — the run already
// happened.
func writeAndClose(f *os.File, path, what string, render func(*os.File) error) {
	if err := render(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s → %s\n", what, path)
}

// explainJob folds the run's event log into per-job causal timelines
// and prints the requested job's phase breakdown — the five phases sum
// exactly to its latency — followed by the per-tenant and per-device
// where-time-goes tables.
func explainJob(rec *micstream.Telemetry, job int) {
	timelines := micstream.FoldTimelines(rec.Events())
	var target *micstream.JobTimeline
	for i := range timelines {
		if timelines[i].Job == job {
			target = &timelines[i]
			break
		}
	}
	if target == nil {
		fatal(fmt.Errorf("-explain: job index %d not present in the run's event log", job))
	}
	fmt.Println()
	if err := micstream.WriteTimeline(os.Stdout, target); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := micstream.WriteTimelineBreakdowns(os.Stdout, "where time goes, by tenant", micstream.TimelinesByTenant(timelines)); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := micstream.WriteTimelineBreakdowns(os.Stdout, "where time goes, by device", micstream.TimelinesByDevice(timelines)); err != nil {
		fatal(err)
	}
}

type clusterFlags struct {
	devices, partitions, streams int
	policy                       string
	depth                        int
	steal                        time.Duration
	slice                        int
	staging                      float64
	cache                        string
	cachecap                     int64
	njobs                        int
	spread, affinity             float64
	datasets                     int
	writefrac                    float64
	xfer                         int64
	origins                      []int
	arrival                      string
	seed                         uint64
	windowNs                     int64
	tenants                      int
}

// runOnce builds a fresh cluster and runs the configured scenario,
// returning the result and the cluster (for its telemetry accessors).
// Flag names were validated in main; the factory below runs once per
// device after validation cannot fail. A non-nil sloSpec stamps its
// deadline-kind thresholds onto the matching tenants' jobs before the
// run, so scheduler miss accounting and the evaluator judge the same
// budget.
func runOnce(place string, f clusterFlags, rec *micstream.Telemetry, sloSpec *micstream.SLOSpec) (*micstream.ClusterResult, *micstream.Cluster) {
	pol, err := micstream.PlaceBy(place)
	if err != nil {
		fatal(err)
	}
	opts := []micstream.ClusterOption{
		micstream.WithClusterDevices(f.devices),
		micstream.WithClusterPartitions(f.partitions),
		micstream.WithClusterStreams(f.streams),
		micstream.WithPlacement(pol),
		micstream.WithClusterQueueDepth(f.depth),
		micstream.WithClusterDevicePolicy(func() micstream.SchedPolicy {
			p, err := micstream.PolicyByName(f.policy)
			if err != nil {
				fatal(err)
			}
			return p
		}),
	}
	if f.steal > 0 {
		opts = append(opts, micstream.WithClusterStealing(f.steal))
	}
	if f.slice > 0 {
		opts = append(opts, micstream.WithClusterSlicing(f.slice))
	}
	if f.staging > 0 {
		opts = append(opts, micstream.WithClusterStagingFactor(f.staging))
	}
	if f.cache == "lru" {
		opts = append(opts, micstream.WithResidency(f.cachecap))
	}
	if rec != nil {
		opts = append(opts, micstream.WithClusterTelemetry(rec))
	}
	c, err := micstream.NewCluster(opts...)
	if err != nil {
		fatal(err)
	}
	origins := f.origins
	if len(origins) == 0 {
		origins = make([]int, f.devices)
		for d := range origins {
			origins[d] = d
		}
	}
	scenario, err := micstream.BuildClusterScenario(c, micstream.ClusterScenarioConfig{
		Jobs:             f.njobs,
		Seed:             f.seed,
		Arrival:          f.arrival,
		WindowNs:         f.windowNs,
		Tenants:          f.tenants,
		SizeSpread:       f.spread,
		AffinityFraction: f.affinity,
		Datasets:         f.datasets,
		WriteFraction:    f.writefrac,
		XferBytes:        f.xfer,
		Origins:          origins,
	})
	if err != nil {
		fatal(err)
	}
	if sloSpec != nil {
		micstream.StampSLODeadlines(scenario, *sloSpec)
	}
	r, err := c.Run(scenario)
	if err != nil {
		fatal(err)
	}
	return r, c
}

// printResult renders one run: header, residency accounting when the
// cache is on, per-device table, per-tenant table, and optionally
// every job.
func printResult(r *micstream.ClusterResult, place, arrival string, seed uint64, cached, perJob bool) {
	var kernU, linkU float64
	for _, ds := range r.Devices {
		kernU += ds.KernelUtilization
		linkU += ds.LinkUtilization
	}
	if n := float64(len(r.Devices)); n > 0 {
		kernU /= n
		linkU /= n
	}
	fmt.Printf("placement=%s arrival=%s seed=%d: %d jobs over %d devices, makespan %v, %d staged (%d MB), %d stolen (%d mid-job), kernel %.0f%% link %.0f%%\n",
		place, arrival, seed, len(r.Jobs), len(r.Devices), r.Makespan, r.StagedJobs, r.StagedBytes>>20, r.Steals, r.Preempts, kernU*100, linkU*100)
	if cached {
		fmt.Printf("residency: %d MB hit, %d MB cold-missed, %d MB evicted\n",
			r.HitBytes>>20, r.MissBytes>>20, r.EvictedBytes>>20)
	}
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tjobs\tstaged\tbusy\tutilization\tkernel\tlink")
	for _, ds := range r.Devices {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%.0f%%\t%.0f%%\t%.0f%%\n",
			ds.Device, ds.Jobs, ds.Staged, ds.Busy, ds.Utilization*100, ds.KernelUtilization*100, ds.LinkUtilization*100)
	}
	tw.Flush()
	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tjobs\tthrpt[job/s]\tp50\tp95\tp99\tslowdown")
	for _, ts := range r.Tenants {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%v\t%v\t%v\t%.2f\n",
			ts.Tenant, ts.Jobs, ts.Throughput, ts.P50, ts.P95, ts.P99, ts.MeanSlowdown)
	}
	tw.Flush()

	if perJob {
		fmt.Println()
		tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "job\ttenant\torigin\tdevice\tstream\tslices\tstaged\tstolen\tarrival\tplaced\tstart\tdone\tlatency")
		for _, o := range r.Jobs {
			stolen := "-"
			if o.Stolen {
				stolen = fmt.Sprintf("%d→%d@%v", o.StolenFrom, o.Device, o.StolenAt)
			}
			if n := len(o.Migrations); n > 0 {
				stolen += fmt.Sprintf(" (%d mid-job)", n)
			}
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%v\t%s\t%v\t%v\t%v\t%v\t%v\n",
				o.ID, o.Tenant, o.Origin, o.Device, o.Stream, o.Slices, o.Staged, stolen, o.Arrival, o.Placed, o.Start, o.Done, o.Latency())
		}
		tw.Flush()
	}
}

// printSLO renders each objective's final verdict: sample counts,
// breaches, remaining error budget, burn rates, and the alert and
// exhaustion instants (virtual time).
func printSLO(ev *micstream.SLOEvaluator) {
	fmt.Println()
	fmt.Println("slo verdicts (error budgets and burn rates at the final drain instant)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "objective\ttenant\tkind\tsamples\tbad\tbudget\tburn-fast\tburn-slow\tfirst-alert\texhausted")
	for _, st := range ev.States() {
		firstAlert, exhausted := "-", "-"
		if st.FirstAlertAt > 0 {
			firstAlert = st.FirstAlertAt.String()
		}
		if st.Exhausted {
			exhausted = st.ExhaustedAt.String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.2f\t%.1f\t%.1f\t%s\t%s\n",
			st.Objective.Name, st.Objective.TenantLabel(), st.Objective.Kind,
			st.Samples, st.Bad, st.BudgetRemaining, st.BurnFast, st.BurnSlow,
			firstAlert, exhausted)
	}
	tw.Flush()
}

// printMetrics renders the drain-instant metrics time series: the
// final snapshot's device and tenant state, preceded by a compact
// trajectory of cluster-wide counters.
func printMetrics(snaps []micstream.MetricsSnapshot) {
	fmt.Println()
	if len(snaps) == 0 {
		fmt.Println("metrics: no snapshots recorded")
		return
	}
	last := snaps[len(snaps)-1]
	fmt.Printf("metrics: %d drain-instant snapshots, final at %v (done %d, steals %d, fairness %.3f)\n\n",
		len(snaps), last.At, last.Done, last.Steals, last.Fairness)
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tqueued\tinflight\tbacklog\tkernel\tlink\tstaged[MB]\tresident[MB]")
	for _, d := range last.Devices {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%.0f%%\t%v\t%d\t%d\n",
			d.Device, d.Queued, d.InFlight, d.Backlog, d.Utilization*100, d.LinkBusy, d.StagedBytes>>20, d.ResidentBytes>>20)
	}
	tw.Flush()
	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tdone\tthrpt[job/s]\tmean\tp95")
	for _, t := range last.Tenants {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%v\t%v\n", t.Tenant, t.Done, t.Throughput, t.MeanLatency, t.P95)
	}
	tw.Flush()
}

type scalingFlags struct {
	maxDevices, partitions, streams int
	policy                          string
	depth                           int
	steal                           time.Duration
	slice                           int
	staging                         float64
	cache                           string
	cachecap                        int64
	njobs                           int
	seed                            uint64
	xfer                            int64
}

// runScaling prints the Fig. 11-style table: the same device-0-resident
// bag of jobs on 1..devices MICs under predicted placement. The
// workload *shape* is fixed by the mode (identical 6-GFLOP jobs, all
// resident on device 0, arriving at once) so the only variable down
// the rows is the device count; -xfer, -staging, -policy, -depth and
// -seed are honoured, the mix-shaping flags (-spread, -affinity,
// -arrival, -window, -tenants) do not apply here.
func runScaling(f scalingFlags) {
	fmt.Printf("multi-MIC scaling through the cluster scheduler (predicted placement, %d identical jobs resident on device 0)\n\n", f.njobs)
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "devices\tmakespan\tGFLOPS\tspeedup\tprojected\tstaged")
	// Powers of two up to the requested count, always including the
	// requested count itself (so -devices=3 gets its own row).
	counts := []int{1}
	for d := 2; d < f.maxDevices; d *= 2 {
		counts = append(counts, d)
	}
	if f.maxDevices > 1 {
		counts = append(counts, f.maxDevices)
	}
	var base float64
	for _, devs := range counts {
		opts := []micstream.ClusterOption{
			micstream.WithClusterDevices(devs),
			micstream.WithClusterPartitions(f.partitions),
			micstream.WithClusterStreams(f.streams),
			micstream.WithClusterQueueDepth(f.depth),
			micstream.WithClusterDevicePolicy(func() micstream.SchedPolicy {
				p, err := micstream.PolicyByName(f.policy)
				if err != nil {
					fatal(err)
				}
				return p
			}),
		}
		if f.steal > 0 {
			opts = append(opts, micstream.WithClusterStealing(f.steal))
		}
		if f.slice > 0 {
			opts = append(opts, micstream.WithClusterSlicing(f.slice))
		}
		if f.staging > 0 {
			opts = append(opts, micstream.WithClusterStagingFactor(f.staging))
		}
		if f.cache == "lru" {
			opts = append(opts, micstream.WithResidency(f.cachecap))
		}
		c, err := micstream.NewCluster(opts...)
		if err != nil {
			fatal(err)
		}
		scenario, err := micstream.BuildClusterScenario(c, micstream.ClusterScenarioConfig{
			Jobs:             f.njobs,
			Seed:             f.seed,
			SizeSpread:       1,
			AffinityFraction: 1,
			Origins:          []int{0},
			KernelFlops:      6e9,
			XferBytes:        f.xfer,
			WindowNs:         1_000_000,
		})
		if err != nil {
			fatal(err)
		}
		r, err := c.Run(scenario)
		if err != nil {
			fatal(err)
		}
		if devs == 1 {
			base = r.GFlops
		}
		fmt.Fprintf(tw, "%d\t%v\t%.1f\t%.2fx\t%.2fx\t%d\n",
			devs, r.Makespan, r.GFlops, r.GFlops/base, float64(devs), r.StagedJobs)
	}
	tw.Flush()
	fmt.Println("\nspeedup lands above 1x but below the projection: every off-origin job")
	fmt.Println("re-stages its input through the host, the Fig. 11 shortfall (paper §VI).")
	fmt.Println("raise -xfer or -staging to deepen the shortfall; -spread/-affinity/")
	fmt.Println("-arrival/-datasets shape the mix modes only, not this table (the scaling")
	fmt.Println("bag gives every job a private input, so -cache=lru has nothing to reuse).")
}

// parseOrigins parses the -origins flag: a comma-separated device
// list, each in [0, devices).
func parseOrigins(s string, devices int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad device %q", part)
		}
		if d < 0 || d >= devices {
			return nil, fmt.Errorf("device %d out of range [0,%d)", d, devices)
		}
		out = append(out, d)
	}
	return out, nil
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "miccluster: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "miccluster:", err)
	os.Exit(1)
}
