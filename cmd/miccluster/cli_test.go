package main

// Table-driven validation of the flag matrix: every contradictory or
// malformed combination must be refused up front with a usage error
// (exit 2) naming the offending flag, and the legal spellings of the
// same features must still run. The test re-executes its own binary
// with RUN_MICCLUSTER_MAIN=1 so main() runs exactly as installed,
// os.Exit and all.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("RUN_MICCLUSTER_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI re-invokes the test binary as the command under test and
// returns its combined output and exit code.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RUN_MICCLUSTER_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("exec: %v", err)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

func TestCLIFlagMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary per case")
	}
	cases := []struct {
		name string
		args []string
		code int
		want string // substring of the combined output
	}{
		// Range violations.
		{"devices zero", []string{"-devices=0"}, 2, "-devices must be positive"},
		{"depth zero", []string{"-depth=0"}, 2, "-depth must be positive"},
		{"negative steal", []string{"-steal=-1ms"}, 2, "-steal must be non-negative"},
		{"writefrac over one", []string{"-writefrac=1.5"}, 2, "-writefrac must be in [0,1]"},
		{"spread under one", []string{"-spread=0.5"}, 2, "-spread must be at least 1"},
		// Unknown names.
		{"bad place", []string{"-place=bogus"}, 2, "-place:"},
		{"bad policy", []string{"-policy=bogus"}, 2, "-policy:"},
		{"bad arrival", []string{"-arrival=bogus"}, 2, "-arrival:"},
		{"bad cache", []string{"-cache=bogus"}, 2, "-cache: unknown cache mode"},
		{"origin out of range", []string{"-devices=2", "-origins=5"}, 2, "-origins:"},
		// Contradictory combos, previously accepted and silently
		// ignored.
		{"cachecap without lru", []string{"-cachecap=1048576"}, 2, "-cachecap needs -cache=lru"},
		{"writefrac without datasets", []string{"-writefrac=0.5"}, 2, "-writefrac needs -datasets"},
		{"flight-cap without flight", []string{"-flight-cap=16"}, 2, "-flight-cap"},
		{"jobs with compare", []string{"-jobs", "-compare"}, 2, "-jobs prints one run's lifecycles"},
		{"jobs with scaling", []string{"-jobs", "-scaling"}, 2, "-jobs prints one run's lifecycles"},
		{"metrics with scaling", []string{"-metrics", "-scaling"}, 2, "-metrics snapshots one scheduler run"},
		{"trace with compare", []string{"-trace=x.json", "-compare"}, 2, "-trace records one run"},
		{"explain with compare", []string{"-explain=0", "-compare"}, 2, "describe one run"},
		{"explain out of range", []string{"-explain=99", "-njobs=4"}, 2, "-explain: job index 99 out of range"},
		{"flight-p95 without flight", []string{"-flight-p95=5ms"}, 2, "-flight-p95 needs -flight"},
		// SLO flag hygiene: the report needs a spec, the spec judges
		// one run, and a malformed spec is a usage error, not a crash.
		{"slo-json without slo", []string{"-slo-json=x.json"}, 2, "-slo-json needs -slo"},
		{"slo with compare", []string{"-slo=spec.json", "-compare"}, 2, "-slo judges one run's objectives"},
		{"slo with scaling", []string{"-slo=spec.json", "-scaling"}, 2, "-slo judges one run's objectives"},
		{"slo missing file", []string{"-slo=/nonexistent/spec.json"}, 2, "-slo:"},
		// The legal spellings still run.
		{"bare run", []string{"-njobs=4"}, 0, "placement=predicted"},
		{"lru with cap", []string{"-njobs=4", "-cache=lru", "-cachecap=1048576"}, 0, "residency:"},
		{"writefrac with datasets", []string{"-njobs=4", "-cache=lru", "-datasets=2", "-writefrac=0.5"}, 0, "residency:"},
		{"jobs alone", []string{"-njobs=4", "-jobs"}, 0, "latency"},
		{"metrics with compare", []string{"-njobs=4", "-metrics", "-compare"}, 0, "snapshots"},
		{"scaling", []string{"-njobs=4", "-scaling"}, 0, "multi-MIC scaling"},
		{"list", []string{"-list"}, 0, "placements:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, code := runCLI(t, tc.args...)
			if code != tc.code {
				t.Fatalf("miccluster %v: exit %d, want %d\n%s", tc.args, code, tc.code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("miccluster %v: output missing %q\n%s", tc.args, tc.want, out)
			}
		})
	}
}

// A malformed objective spec is refused up front with exit 2 naming
// the problem; a legal spec runs, prints the verdict table, and writes
// a byte-deterministic report.
func TestCLISLOSpecValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary per case")
	}
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	malformed := []struct {
		name, body, want string
	}{
		{"unknown field", `{"objectives": [{"bogus": 1}]}`, "unknown field"},
		{"bad duration", `{"objectives": [{"tenant": "A", "name": "x", "kind": "latency", "target": 0.9, "threshold": "fast"}]}`, "-slo:"},
		{"target out of range", `{"objectives": [{"tenant": "A", "name": "x", "kind": "latency", "target": 1.5, "threshold": "2ms"}]}`, "target"},
		{"not json", `objectives:`, "-slo:"},
	}
	for _, tc := range malformed {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runCLI(t, "-slo="+write("bad.json", tc.body))
			if code != 2 {
				t.Fatalf("exit %d, want 2\n%s", code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}

	good := write("good.json", `{"objectives": [
		{"tenant": "A", "name": "a-lat", "kind": "latency", "target": 0.9, "threshold": "1500us"},
		{"tenant": "B", "name": "b-deadline", "kind": "deadline", "target": 0.8, "threshold": "2ms"}
	]}`)
	outA := filepath.Join(dir, "SLO_a.json")
	outB := filepath.Join(dir, "SLO_b.json")
	for _, p := range []string{outA, outB} {
		out, code := runCLI(t, "-njobs=8", "-seed=3", "-slo="+good, "-slo-json="+p)
		if code != 0 {
			t.Fatalf("exit %d\n%s", code, out)
		}
		if !strings.Contains(out, "slo verdicts") || !strings.Contains(out, "a-lat") {
			t.Fatalf("missing verdict table:\n%s", out)
		}
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("SLO reports differ across identical runs:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"schema": "micstream-slo-v1"`)) {
		t.Fatalf("report missing schema header:\n%s", a)
	}
}
