// Command micgantt visualizes temporal and spatial sharing: it runs a
// tiled offload pipeline (the hBench kernel shape) on the simulated
// platform and renders the per-resource timeline as an ASCII Gantt
// chart — Fig. 1 of the paper, measured instead of drawn.
//
// Usage:
//
//	micgantt [-p 4] [-t 8] [-mb 16] [-iters 40] [-width 100]
//
// H = host→device transfer, D = device→host, # = kernel execution.
// Compare -p 1 -t 1 (serial staircase) against -p 4 -t 8 (overlapped
// pipeline) to see why multiple streams help.
package main

import (
	"flag"
	"fmt"
	"os"

	"micstream"
)

func main() {
	var (
		partitions = flag.Int("p", 4, "partitions (streams)")
		tiles      = flag.Int("t", 8, "tiles (tasks)")
		mb         = flag.Int("mb", 16, "array size in MiB")
		iters      = flag.Int("iters", 40, "kernel iterations (compute intensity)")
		width      = flag.Int("width", 100, "chart width in columns")
	)
	flag.Parse()

	p, err := micstream.NewPlatform(micstream.WithPartitions(*partitions))
	if err != nil {
		fatal(err)
	}
	elems := *mb << 20 / 4
	bufA := micstream.AllocVirtual(p, "A", elems, 4)
	bufB := micstream.AllocVirtual(p, "B", elems, 4)
	tasks := make([]*micstream.Task, 0, *tiles)
	for i := 0; i < *tiles; i++ {
		off := i * elems / *tiles
		n := (i+1)*elems / *tiles - off
		tasks = append(tasks, &micstream.Task{
			ID:  i,
			H2D: []micstream.TransferSpec{micstream.Xfer(bufA, off, n)},
			Cost: micstream.KernelCost{
				Name:       "hbench",
				Flops:      float64(n) * float64(*iters),
				Bytes:      float64(n) * 8,
				Efficiency: 0.0364,
			},
			D2H:        []micstream.TransferSpec{micstream.Xfer(bufB, off, n)},
			StreamHint: -1,
		})
	}
	res, err := micstream.RunTasks(p, tasks, 0)
	if err != nil {
		fatal(err)
	}
	if err := p.Gantt(os.Stdout, *width); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwall %v  transfers %v  kernels %v  overlap %.0f%%\n",
		res.Wall, p.TransferBusy(), p.KernelBusy(), p.OverlapFraction()*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "micgantt:", err)
	os.Exit(1)
}
