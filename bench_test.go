package micstream

// One testing.B benchmark per figure of the paper's evaluation. Each
// iteration regenerates the complete figure (every series and sweep
// point) through the experiment harness, so
//
//	go test -bench=Fig -benchtime=1x
//
// reproduces the entire evaluation section. The heavy sweeps take
// seconds per iteration; benchmark time measures the simulator, not
// the modeled platform (whose virtual times are inside the tables).

import (
	"io"
	"sync"
	"testing"
	"time"

	"micstream/internal/experiments"
	"micstream/internal/residency"
)

// benchFigure runs one experiment generator per iteration and reports
// the number of data points produced.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	g, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := g()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
		if err := t.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// Microbenchmark level (§IV).

func BenchmarkFig05TransferOverlap(b *testing.B) { benchFigure(b, "fig5") }
func BenchmarkFig06ComputeOverlap(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig07PartitionSweep(b *testing.B)  { benchFigure(b, "fig7") }

// Application level, streamed vs non-streamed (§V-A, Fig. 8).

func BenchmarkFig08aMM(b *testing.B)      { benchFigure(b, "fig8a") }
func BenchmarkFig08bCF(b *testing.B)      { benchFigure(b, "fig8b") }
func BenchmarkFig08cKmeans(b *testing.B)  { benchFigure(b, "fig8c") }
func BenchmarkFig08dHotspot(b *testing.B) { benchFigure(b, "fig8d") }
func BenchmarkFig08eNN(b *testing.B)      { benchFigure(b, "fig8e") }
func BenchmarkFig08fSRAD(b *testing.B)    { benchFigure(b, "fig8f") }

// Resource granularity (§V-B-1, Fig. 9).

func BenchmarkFig09aMMPartitions(b *testing.B)      { benchFigure(b, "fig9a") }
func BenchmarkFig09bCFPartitions(b *testing.B)      { benchFigure(b, "fig9b") }
func BenchmarkFig09cKmeansPartitions(b *testing.B)  { benchFigure(b, "fig9c") }
func BenchmarkFig09dHotspotPartitions(b *testing.B) { benchFigure(b, "fig9d") }
func BenchmarkFig09eNNPartitions(b *testing.B)      { benchFigure(b, "fig9e") }
func BenchmarkFig09fSRADPartitions(b *testing.B)    { benchFigure(b, "fig9f") }

// Task granularity (§V-B-2, Fig. 10).

func BenchmarkFig10aMMTiles(b *testing.B)      { benchFigure(b, "fig10a") }
func BenchmarkFig10bCFTiles(b *testing.B)      { benchFigure(b, "fig10b") }
func BenchmarkFig10cKmeansTiles(b *testing.B)  { benchFigure(b, "fig10c") }
func BenchmarkFig10dHotspotTiles(b *testing.B) { benchFigure(b, "fig10d") }
func BenchmarkFig10eNNTiles(b *testing.B)      { benchFigure(b, "fig10e") }
func BenchmarkFig10fSRADTiles(b *testing.B)    { benchFigure(b, "fig10f") }

// Multi-MIC (§VI, Fig. 11) and the §V-C search-space study.

func BenchmarkFig11MultiMIC(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkTunerSearch(b *testing.B)   { benchFigure(b, "heuristics") }

// Scheduler studies: multi-tenant fairness and the cluster placement
// comparison (each iteration regenerates the full study grid).

func BenchmarkSchedFairness(b *testing.B)     { benchFigure(b, "fairness") }
func BenchmarkClusterPlacement(b *testing.B)  { benchFigure(b, "placement") }
func BenchmarkClusterScalingFig(b *testing.B) { benchFigure(b, "cluster-scaling") }
func BenchmarkClusterStealing(b *testing.B)   { benchFigure(b, "stealing") }
func BenchmarkClusterResidency(b *testing.B)  { benchFigure(b, "residency") }

// Ablations of the model's load-bearing terms and extensions beyond
// the paper (see EXPERIMENTS.md §Extensions).

func BenchmarkAblationDuplex(b *testing.B)      { benchFigure(b, "ablation-duplex") }
func BenchmarkAblationContention(b *testing.B)  { benchFigure(b, "ablation-contention") }
func BenchmarkAblationAlloc(b *testing.B)       { benchFigure(b, "ablation-alloc") }
func BenchmarkExtHotspotPipelined(b *testing.B) { benchFigure(b, "ext-hotspot-pipe") }
func BenchmarkExtMultiMICScaling(b *testing.B)  { benchFigure(b, "ext-multimic") }
func BenchmarkExtTaxonomy(b *testing.B)         { benchFigure(b, "ext-taxonomy") }

// Engine-level microbenchmarks: the cost of the simulation substrate
// itself (events, reservations, enqueues).

func BenchmarkEnqueueKernel(b *testing.B) {
	p, err := NewPlatform(WithPartitions(4))
	if err != nil {
		b.Fatal(err)
	}
	cost := KernelCost{Name: "k", Flops: 1e6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Stream(i%4).EnqueueKernel(cost, i, nil)
		if i%1024 == 1023 {
			p.Barrier()
		}
	}
	p.Barrier()
}

func BenchmarkEnqueueTransfer(b *testing.B) {
	p, err := NewPlatform(WithPartitions(4))
	if err != nil {
		b.Fatal(err)
	}
	buf := AllocVirtual(p, "v", 1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Stream(i%4).EnqueueH2D(buf, 0, buf.Len(), i); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			p.Barrier()
		}
	}
	p.Barrier()
}

// End-to-end admission throughput: how many simulated jobs per second
// of host CPU the scheduling engines sustain. These are the
// regression canaries for the dispatch hot paths — the virtual-time
// results are asserted elsewhere; here only the simulator's own cost
// is measured. CI runs them once per push (-benchtime 1x).

func BenchmarkSchedAdmission(b *testing.B) {
	jobs := 0
	var inRun time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := NewPlatform(WithPartitions(4), WithStreamsPerPartition(2))
		if err != nil {
			b.Fatal(err)
		}
		scenario, err := BuildScenario(p, ScenarioConfig{Pattern: "severe", Arrival: "bursty", Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewScheduler(p, WithPolicy(SJFPolicy()))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		r, err := s.Run(scenario)
		inRun += time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(r.Jobs)
	}
	if sec := inRun.Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

func BenchmarkClusterAdmission(b *testing.B) {
	jobs := 0
	var inRun time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(
			WithClusterDevices(2),
			WithClusterPartitions(2),
			WithClusterStreams(2),
			WithClusterQueueDepth(8),
		)
		if err != nil {
			b.Fatal(err)
		}
		scenario, err := BuildClusterScenario(c, ClusterScenarioConfig{
			Jobs: 96, Seed: 7, Arrival: "bursty", AffinityFraction: 0.5, Origins: []int{0, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		r, err := c.Run(scenario)
		inRun += time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(r.Jobs)
	}
	if sec := inRun.Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkServeIngest is the service-mode admission canary: eight
// submitter goroutines race jobs through the admission frontier of a
// live ClusterServer and the sustained wall-clock ingest rate is
// reported as jobs/s — the same figure cmd/micserve prints and
// scripts/bench.sh tracks in the throughput series.
func BenchmarkServeIngest(b *testing.B) {
	const submitters, perG = 8, 32
	jobs := 0
	var inRun time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(
			WithClusterDevices(2),
			WithClusterPartitions(2),
			WithClusterStreams(2),
		)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := Serve(c)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < perG; k++ {
					id := g*perG + k
					job := ClusterJob{
						ID:     id,
						Tenant: "t" + string(rune('a'+id%4)),
						Tasks: []*Task{{
							Cost:       KernelCost{Name: "ingest", Flops: 2e8 + 1e8*float64(id%5)},
							StreamHint: -1,
						}},
						Origin: -1,
					}
					if _, err := srv.Submit(job); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if err := srv.Drain(time.Minute); err != nil {
			b.Fatal(err)
		}
		inRun += time.Since(start)
		st := srv.Stats()
		if st.Completed != submitters*perG {
			b.Fatalf("completed %d of %d jobs", st.Completed, submitters*perG)
		}
		jobs += st.Completed
	}
	if sec := inRun.Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkResidencyLookup measures the staging cache's read-only
// probe — the call every placement score and steal estimate makes per
// candidate device, so its cost multiplies into the dispatch hot path.
// CI's bench smoke runs it once per push alongside the admission
// canaries.
func BenchmarkResidencyLookup(b *testing.B) {
	tr, err := residency.New(4, 0)
	if err != nil {
		b.Fatal(err)
	}
	for ds := 0; ds < 16; ds++ {
		tr.Commit(ds%4, []residency.Region{
			{Dataset: "ds" + string(rune('a'+ds)), First: 0, Tiles: 64, TileBytes: 1 << 20},
		})
	}
	probe := []residency.Region{
		{Dataset: "dsc", First: 16, Tiles: 32, TileBytes: 1 << 20},
		{Dataset: "dsq", First: 0, Tiles: 8, TileBytes: 1 << 20},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(i%4, probe)
	}
}

// BenchmarkTelemetryDisabledEmit guards the nil-sink contract on the
// dispatch hot path: emitting into a disabled recorder must cost a
// branch, not an allocation (0 B/op, 0 allocs/op in the report).
func BenchmarkTelemetryDisabledEmit(b *testing.B) {
	var rec *Telemetry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Emit(TelemetryEvent{At: Time(i), Job: i, ID: i, Device: 0, Stream: 1})
	}
}

// BenchmarkClusterTraced is BenchmarkClusterAdmission with telemetry
// enabled: the jobs/s delta against the untraced canary is the
// recording overhead CI's perf trajectory tracks.
func BenchmarkClusterTraced(b *testing.B) {
	jobs := 0
	var inRun time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rec := NewTelemetry()
		c, err := NewCluster(
			WithClusterDevices(2),
			WithClusterPartitions(2),
			WithClusterStreams(2),
			WithClusterQueueDepth(8),
			WithClusterTelemetry(rec),
		)
		if err != nil {
			b.Fatal(err)
		}
		scenario, err := BuildClusterScenario(c, ClusterScenarioConfig{
			Jobs: 96, Seed: 7, Arrival: "bursty", AffinityFraction: 0.5, Origins: []int{0, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		r, err := c.Run(scenario)
		inRun += time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Len() == 0 {
			b.Fatal("traced run recorded no events")
		}
		jobs += len(r.Jobs)
	}
	if sec := inRun.Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	// End-to-end cost of simulating one 64-task pipelined offload.
	for i := 0; i < b.N; i++ {
		p, err := NewPlatform(WithPartitions(4))
		if err != nil {
			b.Fatal(err)
		}
		buf := AllocVirtual(p, "v", 64<<20, 1)
		var tasks []*Task
		per := buf.Len() / 64
		for t := 0; t < 64; t++ {
			tasks = append(tasks, &Task{
				ID:         t,
				H2D:        []TransferSpec{Xfer(buf, t*per, per)},
				Cost:       KernelCost{Name: "k", Flops: 1e8},
				D2H:        []TransferSpec{Xfer(buf, t*per, per)},
				StreamHint: -1,
			})
		}
		if _, err := RunTasks(p, tasks, 0); err != nil {
			b.Fatal(err)
		}
	}
}
