package micstream

import (
	"time"

	"micstream/internal/cluster"
	"micstream/internal/serve"
)

// Service mode (DESIGN.md §15): the batch cluster refactored into a
// long-running server. A ClusterServer owns a persistent
// ClusterSession, ingests jobs concurrently from any number of
// goroutines through a channel-based admission frontier, streams
// per-job outcomes to subscribers as they complete, and serves the
// OpenMetrics exporter and flight recorder live. Wall-clock time
// decides only which epoch batch a job lands in; everything after
// admission is the deterministic virtual-time cascade of DESIGN.md
// §6, so the recorded batch sequence replays bit-identically.

type (
	// ClusterServer is the long-running concurrent-ingest service over
	// one cluster: Submit from any goroutine, Subscribe for the
	// outcome stream, Drain for graceful shutdown with a deadline.
	ClusterServer = serve.Server
	// ClusterSession is the cluster's embedded service mode: batched
	// admissions at epoch boundaries, warm scheduler/residency state
	// across epochs, per-job outcomes streamed on completion. Serve
	// wraps one; embedders driving their own ingest loop use it
	// directly.
	ClusterSession = cluster.Session
	// ServeBatch is one epoch's admitted jobs — the unit of the
	// recorded ingest sequence ReplayBatches consumes.
	ServeBatch = serve.Batch
	// ServeStats snapshots a server's ingest counters, including the
	// sustained jobs/sec rate.
	ServeStats = serve.Stats
	// OutcomeSubscription is one subscriber's outcome stream; Next
	// blocks for the next completion, reporting exhaustion after the
	// server drains.
	OutcomeSubscription = serve.Subscription
	// ServeOption configures Serve.
	ServeOption = serve.Option
)

// ErrServerStopped is returned by ClusterServer.Submit once a drain
// has begun: the job was not admitted and never will be.
var ErrServerStopped = serve.ErrStopped

// Serve opens service mode on a cluster and starts its run loop. The
// cluster is borrowed exclusively until Drain completes.
func Serve(c *Cluster, opts ...ServeOption) (*ClusterServer, error) {
	return serve.New(c, opts...)
}

// NewClusterSession opens the embedded service mode on a cluster:
// batched Submit/RunEpoch cycles under the caller's control, with
// onOutcome (optional) receiving every terminal outcome exactly once
// in virtual completion order.
func NewClusterSession(c *Cluster, onOutcome func(ClusterOutcome)) (*ClusterSession, error) {
	return c.NewSession(onOutcome)
}

// ReplayBatches re-runs a server's recorded admission sequence
// single-threaded on a fresh, identically configured cluster; the
// outcome stream delivered to onOutcome is bit-identical to what the
// live server emitted (DESIGN.md §15).
func ReplayBatches(c *Cluster, batches []ServeBatch, onOutcome func(ClusterOutcome)) (*ClusterResult, error) {
	return serve.Replay(c, batches, onOutcome)
}

// WithServeQueueCap sets the admission frontier's capacity (default
// 256): how many jobs may sit between the submitters and the run loop
// before Submit blocks.
func WithServeQueueCap(n int) ServeOption { return serve.WithQueueCap(n) }

// WithServeBatchCap caps how many jobs one epoch admits (default
// unbounded): a full frontier splits into successive epochs instead
// of one giant batch.
func WithServeBatchCap(n int) ServeOption { return serve.WithBatchCap(n) }

// WithServeExporter attaches the OpenMetrics exporter to the server's
// /metrics endpoint, fed live from every drain-instant snapshot.
// Requires a cluster built WithClusterTelemetry.
func WithServeExporter(x *OpenMetricsExporter) ServeOption { return serve.WithExporter(x) }

// WithServeFlight attaches the flight recorder to the server's
// /flight endpoint, accumulating anomaly dumps live. Requires a
// cluster built WithClusterTelemetry.
func WithServeFlight(f *FlightRecorder) ServeOption { return serve.WithFlight(f) }

// DrainServer drains srv with the given wall-clock deadline — stop
// admission, finish the backlog, close subscriptions — and returns
// the final aggregate result. Convenience over srv.Drain + srv.Result.
func DrainServer(srv *ClusterServer, timeout time.Duration) (*ClusterResult, error) {
	if err := srv.Drain(timeout); err != nil {
		return nil, err
	}
	return srv.Result()
}
