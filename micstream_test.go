package micstream

import (
	"strings"
	"testing"
)

func TestNewPlatformDefaults(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDevices() != 1 || p.NumStreams() != 1 {
		t.Fatalf("default platform: %d devices, %d streams", p.NumDevices(), p.NumStreams())
	}
}

func TestOptionsCompose(t *testing.T) {
	p, err := NewPlatform(WithDevices(2), WithPartitions(4), WithStreamsPerPartition(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStreams() != 16 {
		t.Fatalf("streams = %d, want 16", p.NumStreams())
	}
}

func TestInvalidOptionSurfacesError(t *testing.T) {
	if _, err := NewPlatform(WithDevices(-1)); err == nil {
		t.Fatal("negative devices accepted")
	}
	bad := Xeon31SP()
	bad.ClockHz = -1
	if _, err := NewPlatform(WithDeviceConfig(bad)); err == nil {
		t.Fatal("invalid device config accepted")
	}
}

func TestEndToEndFunctionalPipeline(t *testing.T) {
	p, err := NewPlatform(WithPartitions(2), WithFunctionalKernels())
	if err != nil {
		t.Fatal(err)
	}
	host := make([]float64, 1024)
	for i := range host {
		host[i] = float64(i)
	}
	buf := Alloc1D(p, "v", host)
	const tiles = 4
	var tasks []*Task
	for i := 0; i < tiles; i++ {
		off := i * len(host) / tiles
		n := len(host) / tiles
		tasks = append(tasks, &Task{
			ID:   i,
			H2D:  []TransferSpec{Xfer(buf, off, n)},
			Cost: KernelCost{Name: "scale", Flops: float64(n)},
			Body: func(k *KernelCtx) {
				dev := DeviceSlice[float64](buf, k.DeviceIndex)
				for j := off; j < off+n; j++ {
					dev[j] *= 2
				}
			},
			D2H:        []TransferSpec{Xfer(buf, off, n)},
			StreamHint: -1,
		})
	}
	res, err := RunTasks(p, tasks, float64(len(host)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	for i, v := range host {
		if v != float64(i)*2 {
			t.Fatalf("host[%d] = %v, want %v", i, v, float64(i)*2)
		}
	}
	if p.OverlapFraction() <= 0 {
		t.Fatal("pipelined run achieved no overlap")
	}
	if p.TransferBusy() <= 0 || p.KernelBusy() <= 0 {
		t.Fatal("busy-time accounting empty")
	}
}

func TestGanttRenders(t *testing.T) {
	p, err := NewPlatform(WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	buf := AllocVirtual(p, "v", 1<<20, 4)
	tasks := []*Task{{
		ID:         0,
		H2D:        []TransferSpec{Xfer(buf, 0, buf.Len())},
		Cost:       KernelCost{Name: "k", Flops: 1e9},
		D2H:        []TransferSpec{Xfer(buf, 0, buf.Len())},
		StreamHint: -1,
	}}
	if _, err := RunTasks(p, tasks, 0); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Gantt(&sb, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mic0") {
		t.Fatalf("gantt missing device row:\n%s", sb.String())
	}
}

func TestHostWorkAdvancesClock(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	p.HostWork(1_000_000, "prep")
	if p.Elapsed() != 1e-3 {
		t.Fatalf("elapsed = %v, want 1ms", p.Elapsed())
	}
	if p.Now() != Time(1_000_000) {
		t.Fatalf("now = %v", p.Now())
	}
}

func TestFullDuplexAblation(t *testing.T) {
	run := func(opts ...Option) Duration {
		p, err := NewPlatform(append(opts, WithPartitions(2))...)
		if err != nil {
			t.Fatal(err)
		}
		buf := AllocVirtual(p, "v", 8<<20, 1)
		// Independent streams so any serialization comes from the
		// link, not per-stream FIFO order.
		if _, err := p.Stream(0).EnqueueH2D(buf, 0, buf.Len(), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Stream(1).EnqueueD2H(buf, 0, buf.Len(), 1); err != nil {
			t.Fatal(err)
		}
		return Duration(p.Barrier())
	}
	half := run()
	full := run(WithFullDuplexLink())
	if full >= half {
		t.Fatalf("full-duplex (%v) should beat half-duplex (%v) on bidirectional traffic", full, half)
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	err := RunExperiment("nope", nil)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, ok := err.(*UnknownExperimentError); !ok {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error message %q lacks the id", err.Error())
	}
}

func TestRunExperimentRenders(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment("fig5", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig5") || !strings.Contains(sb.String(), "CC[ms]") {
		t.Fatalf("fig5 output malformed:\n%s", sb.String())
	}
	if len(ExperimentIDs()) < 20 {
		t.Fatalf("expected ≥20 experiments, got %v", ExperimentIDs())
	}
	sb.Reset()
	if err := RunExperimentCSV("fig5", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "#blocks,CC[ms]") {
		t.Fatalf("CSV output malformed:\n%s", sb.String())
	}
	if err := RunExperimentCSV("nope", &sb); err == nil {
		t.Fatal("unknown CSV experiment accepted")
	}
}

func TestTuningHelpers(t *testing.T) {
	cand := CandidatePartitions(Xeon31SP())
	if len(cand) != 8 || cand[len(cand)-1] != 56 {
		t.Fatalf("candidates = %v", cand)
	}
	tiles := CandidateTiles(4, 100)
	if len(tiles) == 0 {
		t.Fatal("no tile candidates")
	}
	if HeuristicSpace(56, 400).Size() >= ExhaustiveSpace(56, 400).Size() {
		t.Fatal("heuristic space not smaller")
	}
	res, err := Tune(SearchSpace{
		Partitions: []int{1, 2},
		TilesFor:   func(int) []int { return []int{1} },
	}, func(p, tt int) (float64, error) { return float64(p), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("tuner picked P=%d", res.Partitions)
	}
}

func TestDefaultLinkIsHalfDuplexPaperCalibrated(t *testing.T) {
	l := DefaultLink()
	if l.FullDuplex {
		t.Fatal("default link should be half-duplex (paper finding 1)")
	}
	if l.BandwidthBps < 6e9 || l.BandwidthBps > 7e9 {
		t.Fatalf("bandwidth %.2g, want ≈6.5 GB/s", l.BandwidthBps)
	}
}
